package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/proc"
	"repro/internal/store"
	"repro/internal/workload"
)

// storeServer builds a server backed by a fresh study store.
func storeServer(t *testing.T, opts Options) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	opts.Store = st
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	srv := NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, st
}

// configBody renders one configuration's 61-cell measure request — the
// same shape the study scheduler posts per lease.
func configBody(t *testing.T, cp proc.ConfiguredProcessor) string {
	t.Helper()
	req := MeasureRequest{Lane: LaneBulk}
	for _, b := range workload.All() {
		req.Cells = append(req.Cells, CellRequest{
			Benchmark: b.Name,
			Processor: cp.Proc.Name,
			Config: &ConfigJSON{
				Cores: cp.Config.Cores, SMTWays: cp.Config.SMTWays,
				ClockGHz: cp.Config.ClockGHz, Turbo: cp.Config.Turbo,
			},
		})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// waitRecorded polls /statsz until the ingest has sealed n studies (it
// is asynchronous behind the measure response).
func waitRecorded(t *testing.T, url string, n int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := statsOf(t, url)
		if st.Store == nil {
			t.Fatal("statsz has no store block on a store-backed daemon")
		}
		if st.Store.Recorded >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest sealed %d studies, want %d", st.Store.Recorded, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStudiesRoundTripByteIdenticalCSV pins the PR's acceptance
// criterion: run the full seed-42 study through the daemon one
// configuration lease at a time (as the scheduler does), then export
// the stored data through /v1/studies/export — the CSVs must be
// byte-identical to the live dataset endpoint's output, because the
// store preserves float bits and the export reuses the live streaming
// code path.
func TestStudiesRoundTripByteIdenticalCSV(t *testing.T) {
	_, ts, st := storeServer(t, Options{Workers: 4})
	cps := proc.ConfigSpace()
	for _, cp := range cps {
		code, body := postMeasure(t, ts.URL, configBody(t, cp))
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", cp, code, body)
		}
	}
	waitRecorded(t, ts.URL, int64(len(cps)))

	// The study list reflects one sealed segment per lease.
	code, b := get(t, ts.URL+"/v1/studies")
	if code != http.StatusOK {
		t.Fatalf("studies index: %d %s", code, b)
	}
	var idx struct {
		Store   store.Stats  `json:"store"`
		Studies []store.Meta `json:"studies"`
	}
	if err := json.Unmarshal(b, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Studies) != len(cps) {
		t.Fatalf("listed %d studies, want %d", len(idx.Studies), len(cps))
	}
	if idx.Store.Rows != int64(len(cps)*61) {
		t.Fatalf("store holds %d rows, want %d", idx.Store.Rows, len(cps)*61)
	}

	// Filtered row queries hit the same data.
	q := url.Values{"benchmark": {"mcf"}, "processor": {proc.I7Name}}
	code, b = get(t, ts.URL+"/v1/studies/rows?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("rows: %d %s", code, b)
	}
	var rows struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatal(err)
	}
	i7Configs := 0
	for _, cp := range cps {
		if cp.Proc.Name == proc.I7Name {
			i7Configs++
		}
	}
	if rows.Count != i7Configs {
		t.Fatalf("mcf-on-i7 rows = %d, want %d (one per i7 config)", rows.Count, i7Configs)
	}

	// Byte-identical export against the live streamers.
	c, err := experiments.NewContext(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"measurements", "aggregates"} {
		code, stored := get(t, ts.URL+"/v1/studies/export?table="+table)
		if code != http.StatusOK {
			t.Fatalf("export %s: %d %s", table, code, stored)
		}
		var live bytes.Buffer
		if table == "measurements" {
			err = experiments.StreamMeasurementsCSV(t.Context(), c, nil, &live, 4)
		} else {
			err = experiments.StreamAggregatesCSV(t.Context(), c, nil, &live, 4)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stored, live.Bytes()) {
			t.Fatalf("stored %s.csv is not byte-identical to the live stream (%d vs %d bytes)",
				table, len(stored), live.Len())
		}
	}

	// Server-side aggregation over the stored rows covers every config.
	code, b = get(t, ts.URL+"/v1/studies/aggregates")
	if code != http.StatusOK {
		t.Fatalf("aggregates: %d %s", code, b)
	}
	var aggs struct {
		Seeds      []int64              `json:"seeds"`
		Cells      int                  `json:"cells"`
		Aggregates []StudyAggregateJSON `json:"aggregates"`
		Skipped    []string             `json:"skipped"`
	}
	if err := json.Unmarshal(b, &aggs); err != nil {
		t.Fatal(err)
	}
	if len(aggs.Aggregates) != len(cps) || len(aggs.Skipped) != 0 {
		t.Fatalf("aggregated %d configs (%d skipped), want %d/0", len(aggs.Aggregates), len(aggs.Skipped), len(cps))
	}
	if len(aggs.Seeds) != 1 || aggs.Seeds[0] != 42 {
		t.Fatalf("seeds = %v, want [42]", aggs.Seeds)
	}

	// The trend replay sees all four technology generations from stored
	// data alone.
	code, b = get(t, ts.URL+"/v1/studies/trend")
	if code != http.StatusOK {
		t.Fatalf("trend: %d %s", code, b)
	}
	var rep struct {
		Generations []struct {
			NodeNM   int      `json:"node_nm"`
			Frontier []string `json:"frontier"`
		} `json:"generations"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Generations) != 4 {
		t.Fatalf("trend saw %d generations, want 4", len(rep.Generations))
	}
	for _, g := range rep.Generations {
		if len(g.Frontier) == 0 {
			t.Fatalf("%d nm: empty frontier", g.NodeNM)
		}
	}

	// Store stats flow through /statsz for the fleet monitor.
	stats := statsOf(t, ts.URL)
	if stats.Store == nil || stats.Store.Segments != int64(len(cps)) || stats.Store.Dropped != 0 {
		t.Fatalf("statsz store block = %+v", stats.Store)
	}
	if st.Stats().Segments != int64(len(cps)) {
		t.Fatalf("store on disk has %d segments, want %d", st.Stats().Segments, len(cps))
	}
}

// TestDrainRecordsWholeStudyOrNothing pins the shutdown ordering fix: a
// drain that begins while a study batch is mid-measurement must wait
// for the worker pool AND the batch's ingest handoff, so the store
// gains the entire study — never a prefix of it.
func TestDrainRecordsWholeStudyOrNothing(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	var enterOnce sync.Once
	srv, ts, st := storeServer(t, Options{
		Workers: 2,
		Hooks: &Hooks{BeforeMeasure: func(seed int64, benchmark, processor string) error {
			enterOnce.Do(func() { close(entered) })
			<-block
			return nil
		}},
	})

	req := MeasureRequest{}
	for _, b := range workload.All()[:8] {
		req.Cells = append(req.Cells, CellRequest{Benchmark: b.Name, Processor: proc.I7Name})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	postDone := make(chan int, 1)
	go func() {
		code, _ := postMeasure(t, ts.URL, string(body))
		postDone <- code
	}()
	<-entered // a cell is inside the measurement path
	// Wait until the whole batch is admitted (in-flight or queued), so
	// the drain races only the ingest handoff — the scenario under
	// test — not the request's own submission.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if srv.pool.QueueDepth()+int(srv.pool.Inflight()) >= len(req.Cells) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never fully queued")
		}
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan struct{})
	go func() {
		srv.Drain()
		close(drainDone)
	}()
	// Give the drain a moment to reach the pool barrier, then release
	// the measurement path. The in-flight batch must run to completion.
	time.Sleep(50 * time.Millisecond)
	close(block)

	if code := <-postDone; code != http.StatusOK {
		t.Fatalf("mid-drain study finished with %d, want 200", code)
	}
	<-drainDone

	// Drain returned: the ingest is flushed and fsynced. All or nothing.
	stats := st.Stats()
	if stats.Segments != 1 || stats.Rows != 8 {
		t.Fatalf("after drain: %d segments / %d rows, want exactly 1/8", stats.Segments, stats.Rows)
	}

	// Post-drain work is rejected and records nothing.
	code, _ := postMeasure(t, ts.URL, string(body))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain measure: %d, want 503", code)
	}
	if got := st.Stats().Segments; got != 1 {
		t.Fatalf("post-drain measure grew the store to %d segments", got)
	}
}

// TestFailedBatchNotRecorded: a batch that errors mid-fan-out commits
// nothing — the store only ever holds complete studies.
func TestFailedBatchNotRecorded(t *testing.T) {
	boom := errors.New("injected fault")
	srv, ts, st := storeServer(t, Options{
		Workers: 2,
		Hooks: &Hooks{BeforeMeasure: func(seed int64, benchmark, processor string) error {
			if benchmark == "mcf" {
				return boom
			}
			return nil
		}},
	})
	body := `{"cells":[
		{"benchmark":"jess","processor":"i7 (45)"},
		{"benchmark":"mcf","processor":"i7 (45)"},
		{"benchmark":"xalan","processor":"i7 (45)"}
	]}`
	code, _ := postMeasure(t, ts.URL, body)
	if code != http.StatusInternalServerError {
		t.Fatalf("faulted batch: %d, want 500", code)
	}
	srv.Drain()
	if got := st.Stats().Segments; got != 0 {
		t.Fatalf("failed batch left %d segments in the store", got)
	}
}

// TestStreamedStudyRecorded: the NDJSON streaming path records the
// completed study just like the buffered path.
func TestStreamedStudyRecorded(t *testing.T) {
	_, ts, st := storeServer(t, Options{Workers: 2})
	body := `{"cells":[
		{"benchmark":"jess","processor":"i5 (32)"},
		{"benchmark":"sunflow","processor":"i5 (32)"}
	]}`
	resp, err := http.Post(ts.URL+"/v1/measure?stream=1", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitRecorded(t, ts.URL, 1)
	stats := st.Stats()
	if stats.Segments != 1 || stats.Rows != 2 {
		t.Fatalf("streamed study stored %d segments / %d rows, want 1/2", stats.Segments, stats.Rows)
	}
}

// TestStudiesRoutesAbsentWithoutStore: a storeless daemon serves 404
// for the studies API and omits the statsz store block.
func TestStudiesRoutesAbsentWithoutStore(t *testing.T) {
	_, ts := testServer(t)
	code, _ := get(t, ts.URL+"/v1/studies")
	if code != http.StatusNotFound {
		t.Fatalf("/v1/studies without a store: %d, want 404", code)
	}
	if st := statsOf(t, ts.URL); st.Store != nil {
		t.Fatalf("storeless statsz grew a store block: %+v", st.Store)
	}
}
