package service

import (
	"log/slog"
	"os"
	"testing"

	"repro/internal/telemetry"
)

// TestMain quiets the per-request access lines: this package's tests
// issue hundreds of HTTP requests, and the daemon logs one Info line
// for each. Warn keeps real problems visible without drowning output.
func TestMain(m *testing.M) {
	telemetry.SetLogLevel(slog.LevelWarn)
	os.Exit(m.Run())
}
