package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// decodeAll drains a stream body into its events, failing the test on
// any decode error.
func decodeAll(t *testing.T, r io.Reader) []*StreamEvent {
	t.Helper()
	d := NewStreamDecoder(r)
	var evs []*StreamEvent
	for {
		ev, err := d.Next()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatalf("decode after %d events: %v", len(evs), err)
		}
		evs = append(evs, ev)
	}
}

// TestMeasureStreamMatchesBuffered is the protocol contract: the
// streamed response carries a header, every cell exactly once (tagged
// with its request index, in whatever completion order), and a done
// line — and the reassembled cells are deeply equal to the buffered
// endpoint's response for the same request.
func TestMeasureStreamMatchesBuffered(t *testing.T) {
	_, ts := testServer(t)
	body := `{"seed":5,"detail":"full","cells":[
		{"benchmark":"mcf","processor":"i7 (45)"},
		{"benchmark":"jess","processor":"i5 (32)"},
		{"benchmark":"vips","processor":"Atom (45)"}]}`

	status, buffered := postMeasure(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("buffered: HTTP %d: %s", status, buffered)
	}
	var bufResp MeasureResponse
	if err := json.Unmarshal(buffered, &bufResp); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/measure?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}

	evs := decodeAll(t, resp.Body)
	if len(evs) == 0 || evs[0].Header == nil {
		t.Fatal("stream did not start with a header line")
	}
	if evs[0].Header.Seed != 5 || evs[0].Header.Cells != 3 {
		t.Fatalf("header = %+v, want seed 5, 3 cells", evs[0].Header)
	}
	last := evs[len(evs)-1]
	if last.Done == nil || last.Done.Cells != 3 {
		t.Fatalf("terminal line = %+v, want done with 3 cells", last)
	}
	got := make([]*CellResult, 3)
	for _, ev := range evs[1 : len(evs)-1] {
		if ev.KeepAlive {
			continue
		}
		if ev.Cell == nil {
			t.Fatalf("unexpected mid-stream line: %+v", ev)
		}
		if got[ev.Cell.Index] != nil {
			t.Fatalf("cell index %d delivered twice", ev.Cell.Index)
		}
		c := ev.Cell.Result
		got[ev.Cell.Index] = &c
	}
	for i := range got {
		if got[i] == nil {
			t.Fatalf("cell %d never delivered", i)
		}
		if !reflect.DeepEqual(*got[i], bufResp.Cells[i]) {
			t.Fatalf("cell %d: streamed result differs from buffered", i)
		}
	}
}

// TestMeasureStreamKeepAlive holds the measurement path long enough
// that the shortened heartbeat must fire: a client waiting on a cold
// cell sees liveness lines, not a silent connection.
func TestMeasureStreamKeepAlive(t *testing.T) {
	srv := NewServer(Options{
		Seed:            42,
		StreamKeepAlive: 2 * time.Millisecond,
		Hooks: &Hooks{BeforeMeasure: func(int64, string, string) error {
			time.Sleep(30 * time.Millisecond)
			return nil
		}},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/measure?stream=1", "application/json",
		strings.NewReader(`{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	keepalives := 0
	for _, ev := range decodeAll(t, resp.Body) {
		if ev.KeepAlive {
			keepalives++
		}
	}
	if keepalives == 0 {
		t.Fatal("no keep-alive lines while the cell computed")
	}
	if st := srv.Stats(); st.Requests.MeasureStreams != 1 {
		t.Fatalf("measure_streams = %d, want 1", st.Requests.MeasureStreams)
	}
}

// TestMeasureStreamError injects a measurement failure and expects the
// in-band terminal error line: headers went out as 200 before the
// failure, so the stream protocol is the only way to signal it.
func TestMeasureStreamError(t *testing.T) {
	srv := NewServer(Options{
		Seed: 42,
		Hooks: &Hooks{BeforeMeasure: func(_ int64, bench, _ string) error {
			return errors.New("injected fault")
		}},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/measure?stream=1", "application/json",
		strings.NewReader(`{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	evs := decodeAll(t, resp.Body)
	last := evs[len(evs)-1]
	if last.Error == "" || !strings.Contains(last.Error, "injected fault") {
		t.Fatalf("terminal line = %+v, want the injected error", last)
	}
}

// TestMeasureStreamLaneValidation rejects unknown lanes up front, on
// the streamed and buffered paths alike.
func TestMeasureStreamLaneValidation(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/measure?stream=1", "application/json",
		strings.NewReader(`{"lane":"express","cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400 for unknown lane", resp.StatusCode)
	}
}

func TestStreamDecoderTolerancesAndTermination(t *testing.T) {
	in := "{\"header\":{\"seed\":1,\"cells\":2}}\n" +
		"\r\n" + // blank CRLF line: tolerated
		"{\"keepalive\":true}\r\n" + // CRLF line: CR trimmed
		"{\"done\":{\"cells\":2}}\n"
	evs := decodeAll(t, strings.NewReader(in))
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3 (blank line skipped)", len(evs))
	}
	if evs[0].Header == nil || !evs[1].KeepAlive || evs[2].Done == nil {
		t.Fatalf("unexpected event sequence: %+v", evs)
	}
}

func TestStreamDecoderTruncatedMidLine(t *testing.T) {
	d := NewStreamDecoder(strings.NewReader("{\"keepalive\":true}\n{\"cell\":{\"ind"))
	if _, err := d.Next(); err != nil {
		t.Fatalf("first line: %v", err)
	}
	if _, err := d.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-line truncation returned %v, want io.ErrUnexpectedEOF", err)
	}
	// Poisoned streams stay poisoned.
	if _, err := d.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("sticky error: got %v", err)
	}
}

func TestStreamDecoderOversizedLine(t *testing.T) {
	r := io.MultiReader(
		strings.NewReader(`{"error":"`),
		strings.NewReader(strings.Repeat("x", MaxStreamLineBytes)),
		strings.NewReader("\"}\n"),
	)
	if _, err := NewStreamDecoder(r).Next(); !errors.Is(err, ErrStreamLineTooLong) {
		t.Fatalf("oversized line returned %v, want ErrStreamLineTooLong", err)
	}
}

func TestStreamDecoderRejectsUnknownLines(t *testing.T) {
	for _, in := range []string{"{}\n", `{"surprise":1}` + "\n", "not json\n"} {
		if _, err := NewStreamDecoder(strings.NewReader(in)).Next(); err == nil || err == io.EOF {
			t.Fatalf("line %q decoded without error", in)
		}
	}
}

// FuzzStreamDecode hardens the NDJSON stream decoder against arbitrary
// bytes: truncated chunks, interleaved keep-alives, binary garbage, and
// oversized lines must surface as clean errors — never a panic, an
// infinite loop, or a buffer beyond the per-line bound.
func FuzzStreamDecode(f *testing.F) {
	f.Add([]byte("{\"header\":{\"seed\":42,\"cells\":1}}\n{\"keepalive\":true}\n{\"cell\":{\"index\":0,\"result\":{}}}\n{\"done\":{\"cells\":1}}\n"))
	f.Add([]byte("{\"keepalive\":true}\n{\"cell\":{\"ind")) // severed mid-line
	f.Add([]byte("\r\n\r\n{\"error\":\"boom\"}\r\n"))
	f.Add([]byte("{\"done\":{\"cells\":0}}\n{\"done\":{\"cells\":0}}\n"))
	f.Add([]byte(`{"error":"` + strings.Repeat("y", 4096) + `"}` + "\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '\n'})
	f.Add(bytes.Repeat([]byte("{\"keepalive\":true}\n"), 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewStreamDecoder(bytes.NewReader(data))
		events := 0
		var firstErr error
		for {
			ev, err := d.Next()
			if err != nil {
				firstErr = err
				break
			}
			if ev == nil {
				t.Fatal("nil event with nil error")
			}
			// Exactly one protocol field must be set (Error counts only
			// when non-empty); the decoder promised a closed vocabulary.
			set := 0
			if ev.Header != nil {
				set++
			}
			if ev.Cell != nil {
				set++
			}
			if ev.KeepAlive {
				set++
			}
			if ev.Error != "" {
				set++
			}
			if ev.Done != nil {
				set++
			}
			if set == 0 {
				t.Fatalf("decoded event with no field set from %q", data)
			}
			if events++; events > len(data) {
				t.Fatal("more events than input bytes: decoder is looping")
			}
		}
		// The per-line buffer must respect the documented bound (plus one
		// bufio chunk of slack for the read that detected the overflow).
		if cap(d.line) > MaxStreamLineBytes+bufio.MaxScanTokenSize {
			t.Fatalf("line buffer grew to %d, bound is %d", cap(d.line), MaxStreamLineBytes)
		}
		// Errors are sticky: the poisoned decoder repeats itself.
		if firstErr != io.EOF {
			if _, err := d.Next(); err != firstErr {
				t.Fatalf("sticky error broken: first %v, then %v", firstErr, err)
			}
		}
	})
}

// TestPoolLanePriority saturates the pool with bulk work and then
// submits an interactive task: the biased consumer must run it ahead of
// the queued bulk backlog — the whole point of the two lanes.
func TestPoolLanePriority(t *testing.T) {
	p := newWorkPool(1, 64)
	defer p.Close()

	var bulkStarted, interactiveDone atomic.Int64
	release := make(chan struct{})
	// Occupy the single worker so everything below queues behind it.
	gate := make(chan struct{})
	go p.DoLane(context.Background(), laneBulk, func() (any, error) {
		close(gate)
		<-release
		return nil, nil
	})
	<-gate

	const bulk = 16
	bulkErrs := make(chan error, bulk)
	for i := 0; i < bulk; i++ {
		go func() {
			_, err := p.DoLane(context.Background(), laneBulk, func() (any, error) {
				bulkStarted.Add(1)
				return nil, nil
			})
			bulkErrs <- err
		}()
	}
	// Wait until the bulk backlog is actually queued.
	for start := time.Now(); p.LaneDepth(laneBulk) < bulk; {
		if time.Since(start) > 5*time.Second {
			t.Fatalf("bulk backlog never queued (depth %d)", p.LaneDepth(laneBulk))
		}
		time.Sleep(time.Millisecond)
	}

	interactiveErr := make(chan error, 1)
	go func() {
		_, err := p.DoLane(context.Background(), laneInteractive, func() (any, error) {
			interactiveDone.Add(1)
			if n := bulkStarted.Load(); n != 0 {
				t.Errorf("interactive ran after %d bulk tasks, want 0", n)
			}
			return nil, nil
		})
		interactiveErr <- err
	}()
	// Let the interactive submission reach its queue before releasing
	// the worker.
	for start := time.Now(); p.LaneDepth(laneInteractive) < 1; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("interactive task never queued")
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if err := <-interactiveErr; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < bulk; i++ {
		if err := <-bulkErrs; err != nil {
			t.Fatal(err)
		}
	}
	if interactiveDone.Load() != 1 || bulkStarted.Load() != bulk {
		t.Fatalf("interactive=%d bulk=%d, want 1 and %d",
			interactiveDone.Load(), bulkStarted.Load(), bulk)
	}
}
