package service

import (
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/slo"
)

// The daemon's stock objective names. The observe middleware feeds the
// first two from live traffic; the third samples the study-ingest
// counters. Custom Options.SLO configs may use any names, but only
// these are fed automatically.
const (
	// SLOLatency judges /v1/measure wall time against its threshold.
	SLOLatency = "measure-latency"
	// SLOAvailability judges every API request (non-5xx is good).
	SLOAvailability = "availability"
	// SLODurability judges study-ingest outcomes (committed vs dropped).
	SLODurability = "ingest-durability"
)

// DefaultSLOConfig returns the daemon's stock objectives: measure
// latency under 2s at 99%, API availability at 99.5%, and ingest
// durability at 99.9%. Windows, thresholds, and cadence keep the
// multi-window burn-rate defaults (5m/1h fast at 14.4, 6h/3d slow
// at 1). Callers tune fields before passing the config to Options.
func DefaultSLOConfig() *slo.Config {
	return &slo.Config{
		Objectives: []slo.Objective{
			{
				Name:             SLOLatency,
				Kind:             slo.KindLatency,
				Description:      "Measure requests complete within the latency threshold.",
				Target:           0.99,
				LatencyThreshold: 2 * time.Second,
			},
			{
				Name:        SLOAvailability,
				Kind:        slo.KindAvailability,
				Description: "API requests succeed (any non-5xx status).",
				Target:      0.995,
			},
			{
				Name:        SLODurability,
				Kind:        slo.KindDurability,
				Description: "Completed study batches reach the durable store.",
				Target:      0.999,
			},
		},
	}
}

// SLOEngine exposes the attached SLO engine, nil when Options.SLO was
// not set (tests drive it directly; the cluster attributes per-backend
// outcomes through it).
func (s *Server) SLOEngine() *slo.Engine { return s.sloEng }

// handleSloz serves the SLO snapshot: objectives with budgets and
// windowed burn rates, plus live burn-rate alerts annotated with
// breach-exemplar trace ids (resolve them at /v1/traces?trace=<id>).
func (s *Server) handleSloz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sloEng.Snapshot(time.Now()))
}

// PprofHandler returns the standard /debug/pprof mux (index, cmdline,
// profile, symbol, trace, and the named runtime profiles via the index
// handler). powerperfd mounts it under -pprof, and the fleet profiler
// harvests /debug/pprof/profile and /debug/pprof/heap from it; tests
// reuse it so their in-process backends profile exactly like the
// daemon.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
