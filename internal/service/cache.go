// Package service implements powerperfd, the long-running measurement
// daemon: an HTTP JSON API over the study harness with a sharded,
// singleflight-deduplicated, LRU-bounded measurement cache.
//
// The cache is sound because of the repository's determinism contract
// (DESIGN.md): a measurement is a pure function of the (benchmark,
// processor, config, seed) tuple — every run derives its noise and
// jitter streams from that identity, never from shared state — so a
// cached cell is bit-identical to a recomputed one, and identical
// requests can be computed once and served from memory forever.
package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// cacheShards is the default shard count: enough to keep lock
// contention off the request path at the tested concurrency (32+
// clients), small enough that per-shard LRU capacity stays meaningful.
// The tuner sweeps this knob through Options.CacheShards.
const cacheShards = 16

// Cache is a sharded LRU keyed by string with singleflight fills: the
// first requester of a key computes it while concurrent requesters for
// the same key wait for that one computation. Failed fills are not
// cached — errors are observed by the waiters of that fill and the next
// request recomputes.
type Cache struct {
	shards []shard
	// perShard is the max completed entries per shard; total capacity is
	// perShard * len(shards).
	perShard int

	hits      atomic.Int64 // served from a completed entry
	misses    atomic.Int64 // fills started
	coalesced atomic.Int64 // waited on another requester's fill
	evictions atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     list.List // front = most recently used; values are *entry
}

// entry is one cache slot. done is closed when the fill completes; val
// and err are immutable afterwards.
type entry struct {
	key  string
	done chan struct{}
	val  any
	err  error
}

func (e *entry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// NewCache builds a cache bounded to roughly capacity completed entries
// (rounded up to a multiple of the shard count). capacity <= 0 selects
// an effectively unbounded cache.
func NewCache(capacity int) *Cache {
	return NewCacheShards(capacity, cacheShards)
}

// ValidateCacheShards rejects shard counts the masked router cannot
// serve: shardFor selects a shard with h & (shards-1), which is only a
// uniform modulus when shards is a power of two. 0 (the default) is
// valid; powerperfd checks its -cache-shards flag through this at
// startup so a bad value is a clean exit, not a silently skewed cache.
func ValidateCacheShards(n int) error {
	if n < 0 {
		return fmt.Errorf("service: cache shards must be >= 0, got %d", n)
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("service: cache shards must be a power of two, got %d", n)
	}
	return nil
}

// NewCacheShards is NewCache with an explicit shard count — the knob
// the auto-tuner sweeps. shards <= 0 selects the default; a count that
// is not a power of two rounds up to the next one, keeping the masked
// shard router sound for callers that skip ValidateCacheShards.
// Sharding is pure concurrency plumbing: any shard count serves the
// same values.
func NewCacheShards(capacity, shards int) *Cache {
	if shards <= 0 {
		shards = cacheShards
	}
	if shards&(shards-1) != 0 {
		p := 1
		for p < shards {
			p <<= 1
		}
		shards = p
	}
	per := 0
	if capacity > 0 {
		per = (capacity + shards - 1) / shards
		if per < 1 {
			per = 1
		}
	}
	c := &Cache{perShard: per, shards: make([]shard, shards)}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
	}
	return c
}

// shardFor routes a key to its shard with an inlined FNV-1a; the
// stdlib's fnv.New32a allocates its state on every call, which put a
// heap allocation on every cache lookup of the serving path. The mask
// replaces the former modulus and requires len(shards) to be a power of
// two, which NewCacheShards guarantees by construction.
func (c *Cache) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&uint32(len(c.shards)-1)]
}

// Outcome classifies how GetOrComputeOutcome satisfied a request; the
// service annotates each cell's span with it and feeds the fill-
// duration histogram on misses.
type Outcome int

const (
	// OutcomeHit served a completed cache entry.
	OutcomeHit Outcome = iota
	// OutcomeMiss started (and completed) the fill itself.
	OutcomeMiss
	// OutcomeCoalesced waited on another requester's in-flight fill.
	OutcomeCoalesced
)

// String renders the outcome for span attributes and log fields.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeCoalesced:
		return "coalesced"
	}
	return "unknown"
}

// GetOrCompute returns the cached value for key, or computes it via fn.
// Exactly one concurrent caller runs fn per key (singleflight); the
// others wait for it, subject to their own ctx. The computing caller is
// not cancellable once the fill starts — a deterministic fill is worth
// completing because every future request for the key reuses it.
func (c *Cache) GetOrCompute(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	v, _, err := c.GetOrComputeOutcome(ctx, key, fn)
	return v, err
}

// GetOrComputeOutcome is GetOrCompute reporting how the request was
// satisfied, so callers can attribute latency to fills versus waits.
func (c *Cache) GetOrComputeOutcome(ctx context.Context, key string, fn func() (any, error)) (any, Outcome, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*entry)
		if e.completed() {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			c.hits.Add(1)
			return e.val, OutcomeHit, e.err
		}
		s.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-e.done:
			return e.val, OutcomeCoalesced, e.err
		case <-ctx.Done():
			return nil, OutcomeCoalesced, ctx.Err()
		}
	}
	e := &entry{key: key, done: make(chan struct{})}
	el := s.lru.PushFront(e)
	s.entries[key] = el
	s.mu.Unlock()
	c.misses.Add(1)

	e.val, e.err = fn()
	close(e.done)

	s.mu.Lock()
	if e.err != nil {
		// Errors are not cached: drop the entry so the next request
		// retries the fill.
		if cur, ok := s.entries[key]; ok && cur == el {
			s.lru.Remove(el)
			delete(s.entries, key)
		}
	} else if c.perShard > 0 {
		// Evict completed entries from the LRU tail. In-flight fills are
		// pinned: they rotate to the front, and the bounded scan keeps the
		// loop finite even if every resident entry is in flight.
		for scanned, max := 0, s.lru.Len(); s.lru.Len() > c.perShard && scanned < max; scanned++ {
			tail := s.lru.Back()
			te := tail.Value.(*entry)
			if !te.completed() {
				s.lru.MoveToFront(tail)
				continue
			}
			s.lru.Remove(tail)
			delete(s.entries, te.key)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
	return e.val, OutcomeMiss, e.err
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for _, l := range c.ShardLens() {
		n += l
	}
	return n
}

// ShardLens returns the resident entry count of every shard, in shard
// order — the per-shard occupancy view /statsz and /metricsz expose so
// operators can see whether the rendezvous routing keeps each backend's
// key space (and therefore its shards) evenly loaded.
func (c *Cache) ShardLens() []int {
	lens := make([]int, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		lens[i] = s.lru.Len()
		s.mu.Unlock()
	}
	return lens
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Shards    []int `json:"shard_entries"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	shards := c.ShardLens()
	n := 0
	for _, l := range shards {
		n += l
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
		Capacity:  c.perShard * len(c.shards),
		Shards:    shards,
	}
}

// HitRate is hits / (hits + misses + coalesced), 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
