package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Per-endpoint-family HTTP latency distributions, the server-side view
// of what the cluster client measures per backend.
var httpHistName = "powerperfd_http_request_seconds"

func httpHist(endpoint string) *telemetry.Histogram {
	return telemetry.Default.LabeledHistogram(httpHistName,
		"Wall time of HTTP requests by endpoint family.", "endpoint", endpoint)
}

// endpointFamily buckets request paths into a bounded label set, so
// arbitrary client paths cannot mint unbounded metric series.
func endpointFamily(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/measure"):
		return "measure"
	case strings.HasPrefix(path, "/v1/experiments"):
		return "experiments"
	case strings.HasPrefix(path, "/v1/studies"):
		return "studies"
	case strings.HasPrefix(path, "/v1/dataset"):
		return "dataset"
	case strings.HasPrefix(path, "/v1/traceview"):
		return "traceview"
	case strings.HasPrefix(path, "/v1/traces"):
		return "traces"
	case path == "/v1/sloz":
		return "sloz"
	case path == "/v1/alertz":
		return "alertz"
	case path == "/healthz", path == "/statsz", path == "/metricsz":
		return strings.TrimPrefix(path, "/")
	default:
		return "other"
	}
}

// statusWriter records the committed status code while preserving the
// Flusher contract the dataset streamer depends on.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController passthrough.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// monitoringPlane reports whether an endpoint family is scrape
// infrastructure rather than workload: liveness, stats, metrics, and
// the trace export itself. These get no spans — a fleet monitor polling
// every few seconds would otherwise evict real workload spans from the
// bounded ring and bloat every /v1/traces export with records of
// reading it (the observer effect, in the literal sense). They keep the
// latency histogram, and their access lines log at Debug so a scraped
// daemon's log stays about its workload.
func monitoringPlane(family string) bool {
	switch family {
	case "healthz", "statsz", "metricsz", "traces", "traceview", "sloz", "alertz":
		return true
	}
	return false
}

// observe wraps the API mux with the daemon's request telemetry: a
// server span per request (adopting X-Trace-Id/X-Parent-Span so a
// cluster coordinator's trace stitches through), the per-endpoint
// latency histogram, and one structured access line per request.
// Monitoring-plane endpoints are exempt from spans (see
// monitoringPlane).
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		family := endpointFamily(r.URL.Path)
		plane := monitoringPlane(family)

		var ctx = r.Context()
		var span *telemetry.Span
		if !plane {
			if trace, parent, ok := telemetry.ExtractHeaders(r.Header); ok {
				ctx, span = s.tracer.StartRemote(ctx, trace, parent, "http."+family)
			} else {
				ctx, span = s.tracer.StartSpan(ctx, "http."+family)
			}
			span.Annotate(
				telemetry.String("method", r.Method),
				telemetry.String("path", r.URL.Path),
			)
			w.Header().Set(telemetry.HeaderTraceID, span.Trace().String())
		}

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)

		var trace telemetry.TraceID
		if span != nil {
			span.Annotate(telemetry.String("status", strconv.Itoa(sw.status)))
			if sw.status >= 500 {
				// The error attribute is what tail sampling keys on: a
				// failed request's whole trace survives the sampler.
				span.Annotate(telemetry.String("error", http.StatusText(sw.status)))
			}
			trace = span.Trace()
			span.End()
		}
		if trace != 0 {
			// Exemplar-linked observation: the histogram bucket this
			// request lands in remembers the trace, so a burn-rate page
			// reached from /metricsz links straight to /v1/traces.
			httpHist(family).ObserveWithExemplar(dur, trace)
		} else {
			httpHist(family).Observe(dur)
		}
		if s.sloEng != nil && !plane {
			s.sloEng.Observe(SLOAvailability, sw.status < 500)
			if sw.status >= 500 {
				s.sloEng.RecordBreach(SLOAvailability, trace, dur.Seconds())
			}
			if family == "measure" {
				s.sloEng.ObserveLatency(SLOLatency, dur, trace)
			}
		}
		level := slog.LevelInfo
		if plane {
			level = slog.LevelDebug
		}
		s.logger.Log(ctx, level, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", dur),
		)
	})
}

// handleTraces serves the tracer's retained spans in the Chrome
// trace-event JSON format (load the body in chrome://tracing or
// Perfetto). ?trace=<16-hex-digit id> narrows to one trace — the
// coordinator uses it to stitch backend spans into its own view.
// ?format=spans switches to the raw span-record export (absolute
// timestamps, stable 64-bit ids) that the fleet trace-analytics
// harvester assembles across backends; Chrome's per-export rebased
// timestamps cannot be stitched.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	var trace telemetry.TraceID
	if tv := r.URL.Query().Get("trace"); tv != "" {
		id, err := telemetry.ParseID(tv)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		trace = telemetry.TraceID(id)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if r.URL.Query().Get("format") == "spans" {
		_ = s.tracer.WriteSpans(w, trace)
		return
	}
	_ = s.tracer.WriteChromeTrace(w, trace)
}
