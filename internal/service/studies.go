package service

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/store"
	"repro/internal/trend"
	"repro/internal/workload"
)

// ingestBuffer bounds the study ingest queue. Studies are whole
// completed batches, so the buffer absorbs bursts of small interactive
// requests; when the writer falls behind a sustained burst, studies are
// dropped (and counted) rather than blocking the serving path.
const ingestBuffer = 64

// ingestSyncDelay is the group-commit window: after a seal, the writer
// holds the fsync open this long for further studies to share it (a
// cluster study arrives as several batches in quick succession). It
// bounds the durability lag of a sealed study; drain and close always
// force the sync regardless.
const ingestSyncDelay = 25 * time.Millisecond

// studyIngest is the asynchronous write path from completed /v1/measure
// batches into the study store. Handlers register a recorder before
// fanning out, deliver measured rows through it, and commit only when
// the whole batch succeeded — so the log only ever gains complete
// studies. Shutdown ordering (see Server.Drain) closes the ingest after
// the worker pool drains: close waits for every registered recorder to
// release, then seals whatever committed, so a SIGTERM mid-study writes
// either the whole study or nothing.
type studyIngest struct {
	store  *store.Store
	logger *slog.Logger
	ch     chan *store.Study
	done   chan struct{}

	mu      sync.Mutex
	closing bool
	// pending counts registered recorders; Add happens under mu against
	// the closing flag, so close()'s Wait cannot race a late begin.
	pending sync.WaitGroup

	recorded atomic.Int64
	rowsIn   atomic.Int64
	dropped  atomic.Int64
	writeErr atomic.Int64
}

func newStudyIngest(st *store.Store, logger *slog.Logger) *studyIngest {
	ing := &studyIngest{
		store:  st,
		logger: logger,
		ch:     make(chan *store.Study, ingestBuffer),
		done:   make(chan struct{}),
	}
	go ing.run()
	return ing
}

// run is the single writer goroutine. Seals group-commit: each study
// is encoded and written as its own segment the moment it arrives, but
// the fsync is held open for ingestSyncDelay so studies landing in
// quick succession share one journal flush instead of paying one per
// seal. An idle ingest therefore syncs every seal within the window,
// and close() syncs whatever a shutdown left unforced.
func (ing *studyIngest) run() {
	defer close(ing.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	dirty := false
	sync := func() {
		if !dirty {
			return
		}
		dirty = false
		if err := ing.store.Sync(); err != nil {
			ing.writeErr.Add(1)
			ing.logger.Error("study store sync failed", slog.String("error", err.Error()))
		}
	}
	for {
		var st *store.Study
		var ok bool
		if dirty {
			timer.Reset(ingestSyncDelay)
			select {
			case st, ok = <-ing.ch:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
				sync()
				continue
			}
		} else {
			st, ok = <-ing.ch
		}
		if !ok {
			sync()
			return
		}
		if _, err := ing.store.AppendDeferSync(st); err != nil {
			ing.writeErr.Add(1)
			ing.logger.Error("study store append failed", slog.String("error", err.Error()))
			continue
		}
		dirty = true
		ing.recorded.Add(1)
		ing.rowsIn.Add(int64(len(st.Rows)))
	}
}

// begin registers a recorder for an in-flight measure batch. Nil-safe:
// with no store attached (or during shutdown) it returns nil, and the
// nil recorder's methods are no-ops.
func (ing *studyIngest) begin(seed int64, cells int) *studyRecorder {
	if ing == nil {
		return nil
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.closing {
		return nil
	}
	ing.pending.Add(1)
	return &studyRecorder{ing: ing, seed: seed, rows: make([]store.Row, cells)}
}

// enqueue hands a completed study to the writer. Registered recorders
// only call this before release, and close() only closes the channel
// after every recorder released, so the send cannot race the close.
func (ing *studyIngest) enqueue(st *store.Study) {
	select {
	case ing.ch <- st:
	default:
		ing.dropped.Add(1)
	}
}

// close drains the ingest: no new recorders, wait for in-flight
// batches to commit or abandon, seal everything queued, sync. Safe to
// call more than once.
func (ing *studyIngest) close() {
	if ing == nil {
		return
	}
	ing.mu.Lock()
	already := ing.closing
	ing.closing = true
	ing.mu.Unlock()
	if already {
		<-ing.done
		return
	}
	ing.pending.Wait()
	close(ing.ch)
	<-ing.done
	if err := ing.store.Sync(); err != nil {
		ing.logger.Error("study store sync failed", slog.String("error", err.Error()))
	}
}

// studyRecorder accumulates one batch's measured rows. observe is
// called concurrently from the fan-out (distinct indices); commit and
// release are called once each from the handler goroutine.
type studyRecorder struct {
	ing      *studyIngest
	seed     int64
	rows     []store.Row
	released bool
}

// observe records one measured cell. Index-addressed, so concurrent
// fan-out goroutines never touch the same slot.
func (r *studyRecorder) observe(i int, m *harness.Measurement) {
	if r == nil {
		return
	}
	r.rows[i] = store.RowFromMeasurement(m)
}

// commit enqueues the completed study. Call only after the fan-out
// finished without error: every row slot is filled.
func (r *studyRecorder) commit() {
	if r == nil || len(r.rows) == 0 {
		return
	}
	r.ing.enqueue(&store.Study{Seed: r.seed, Rows: r.rows})
}

// release drops the recorder's pending registration; deferred by the
// handler so abandoned batches (errors, disconnects, drain) unblock
// shutdown.
func (r *studyRecorder) release() {
	if r == nil || r.released {
		return
	}
	r.released = true
	r.ing.pending.Done()
}

// StoreStats is the /statsz store block: segment inventory from the
// store plus ingest-path counters.
type StoreStats struct {
	Segments     int64 `json:"segments"`
	Rows         int64 `json:"rows"`
	Bytes        int64 `json:"bytes"`
	LastSealUnix int64 `json:"last_seal_unix"`
	Recorded     int64 `json:"recorded_studies"`
	RecordedRows int64 `json:"recorded_rows"`
	Dropped      int64 `json:"dropped_studies"`
	WriteErrors  int64 `json:"write_errors"`
}

func (ing *studyIngest) stats() *StoreStats {
	if ing == nil {
		return nil
	}
	st := ing.store.Stats()
	return &StoreStats{
		Segments:     st.Segments,
		Rows:         st.Rows,
		Bytes:        st.Bytes,
		LastSealUnix: st.LastSealUnix,
		Recorded:     ing.recorded.Load(),
		RecordedRows: ing.rowsIn.Load(),
		Dropped:      ing.dropped.Load(),
		WriteErrors:  ing.writeErr.Load(),
	}
}

// parseStudyQuery maps the shared /v1/studies query parameters onto a
// store query: processor, benchmark, config (exact matches), seed, and
// since/until as RFC 3339 or Unix seconds.
func parseStudyQuery(r *http.Request) (store.Query, error) {
	v := r.URL.Query()
	q := store.Query{
		Processor: v.Get("processor"),
		Benchmark: v.Get("benchmark"),
		Config:    v.Get("config"),
	}
	if s := v.Get("seed"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return q, fmt.Errorf("bad seed %q", s)
		}
		q.Seed = &n
	}
	var err error
	if q.Since, err = parseTimeParam(v.Get("since")); err != nil {
		return q, err
	}
	if q.Until, err = parseTimeParam(v.Get("until")); err != nil {
		return q, err
	}
	return q, nil
}

func parseTimeParam(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(sec, 0), nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC 3339 or Unix seconds)", s)
}

// handleStudiesIndex lists sealed studies (optionally filtered by
// seed/since/until) plus the store inventory.
func (s *Server) handleStudiesIndex(w http.ResponseWriter, r *http.Request) {
	s.reqStudies.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	q, err := parseStudyQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	metas := make([]store.Meta, 0)
	for _, m := range s.opts.Store.Studies() {
		if q.MatchMeta(m) {
			metas = append(metas, m)
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Store   store.Stats  `json:"store"`
		Studies []store.Meta `json:"studies"`
	}{s.opts.Store.Stats(), metas})
}

// StudyRowJSON is one stored measurement row on the wire.
type StudyRowJSON struct {
	StudyID    uint64  `json:"study_id"`
	Seed       int64   `json:"seed"`
	SealedUnix int64   `json:"sealed_unix"`
	Benchmark  string  `json:"benchmark"`
	Processor  string  `json:"processor"`
	Config     string  `json:"configuration"`
	Runs       int     `json:"runs"`
	Seconds    float64 `json:"seconds"`
	Watts      float64 `json:"watts"`
	EnergyJ    float64 `json:"energy_j"`
	TimeCIRel  float64 `json:"time_ci_rel"`
	PowerCIRel float64 `json:"power_ci_rel"`
}

// handleStudyRows serves filtered stored rows, capped by ?limit=
// (default 1000).
func (s *Server) handleStudyRows(w http.ResponseWriter, r *http.Request) {
	s.reqStudies.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	q, err := parseStudyQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := 1000
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if limit, err = strconv.Atoi(ls); err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", ls))
			return
		}
	}
	recs, err := s.opts.Store.Rows(q, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	rows := make([]StudyRowJSON, len(recs))
	for i, rec := range recs {
		rows[i] = StudyRowJSON{
			StudyID:    rec.StudyID,
			Seed:       rec.Seed,
			SealedUnix: rec.Sealed / int64(time.Second),
			Benchmark:  rec.Row.Benchmark,
			Processor:  rec.Row.Processor,
			Config:     rec.Row.ConfigString(),
			Runs:       rec.Row.Runs,
			Seconds:    rec.Row.Seconds,
			Watts:      rec.Row.Watts,
			EnergyJ:    rec.Row.EnergyJ,
			TimeCIRel:  rec.Row.TimeCI.Stats().Relative(),
			PowerCIRel: rec.Row.PowerCI.Stats().Relative(),
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Count int            `json:"count"`
		Rows  []StudyRowJSON `json:"rows"`
	}{len(rows), rows})
}

// collectDataset materializes the filtered slice of the store, mapping
// empty results and store errors to HTTP statuses. A nil return means
// the response was already written.
func (s *Server) collectDataset(w http.ResponseWriter, r *http.Request) *store.Dataset {
	q, err := parseStudyQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil
	}
	d, err := s.opts.Store.Collect(q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return nil
	}
	if d.Cells() == 0 {
		writeError(w, http.StatusNotFound, "no stored rows match the query")
		return nil
	}
	return d
}

// parseGroups maps an optional ?group= parameter to workload groups.
func parseGroups(r *http.Request) ([]workload.Group, error) {
	gs := r.URL.Query().Get("group")
	if gs == "" {
		return nil, nil
	}
	for _, g := range workload.Groups() {
		if g.String() == gs {
			return []workload.Group{g}, nil
		}
	}
	return nil, fmt.Errorf("unknown group %q", gs)
}

// StudyAggregateJSON is one configuration's Section 2.6 aggregate
// computed from stored rows.
type StudyAggregateJSON struct {
	Config  string  `json:"configuration"`
	PerfW   float64 `json:"perf_norm"`
	WattsW  float64 `json:"watts"`
	EnergyW float64 `json:"energy_norm"`
	PerfB   float64 `json:"perf_norm_mean"`
	WattsB  float64 `json:"watts_mean"`
	EnergyB float64 `json:"energy_norm_mean"`
}

// handleStudyAggregates aggregates the stored slice with the exact live
// code path (harness.AggregateConfig over a rebuilt reference), so the
// numbers match what the daemon would serve live for the same seed.
func (s *Server) handleStudyAggregates(w http.ResponseWriter, r *http.Request) {
	s.reqStudies.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	d := s.collectDataset(w, r)
	if d == nil {
		return
	}
	groups, err := parseGroups(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	results, skipped, err := d.Aggregate(groups)
	if err != nil {
		writeStudyAggError(w, err)
		return
	}
	aggs := make([]StudyAggregateJSON, len(results))
	for i, res := range results {
		aggs[i] = StudyAggregateJSON{
			Config:  res.CP.String(),
			PerfW:   res.PerfW,
			WattsW:  res.WattsW,
			EnergyW: res.EnergyW,
			PerfB:   res.PerfB,
			WattsB:  res.WattsB,
			EnergyB: res.EnergyB,
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Seeds      []int64              `json:"seeds"`
		Cells      int                  `json:"cells"`
		Aggregates []StudyAggregateJSON `json:"aggregates"`
		Skipped    []string             `json:"skipped,omitempty"`
	}{d.Seeds(), d.Cells(), aggs, skipped})
}

// writeStudyAggError maps aggregation failures: a missing reference
// cell means the stored slice cannot be normalized (client's query cut
// too deep), anything else is a server fault.
func writeStudyAggError(w http.ResponseWriter, err error) {
	if errors.Is(err, store.ErrMissingCell) {
		writeError(w, http.StatusUnprocessableEntity,
			"stored slice lacks the reference cells needed for normalization: "+err.Error())
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error())
}

// handleStudyExport streams the stored slice as the committed dataset
// CSVs (?table=measurements|aggregates) through the same streamers as
// the live /v1/dataset endpoint — same rows, same order, same byte
// formatting, so a stored full study exports byte-identical CSVs.
// Incomplete configurations are excluded (they cannot fill their grid
// rows).
func (s *Server) handleStudyExport(w http.ResponseWriter, r *http.Request) {
	s.reqStudies.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		table = "measurements"
	}
	if table != "measurements" && table != "aggregates" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown table %q (want measurements or aggregates)", table))
		return
	}
	d := s.collectDataset(w, r)
	if d == nil {
		return
	}
	ref, err := d.Reference()
	if err != nil {
		writeStudyAggError(w, err)
		return
	}
	all := d.Configs()
	complete := all[:0:0]
	for _, cp := range all {
		if d.Complete(cp, nil) {
			complete = append(complete, cp)
		}
	}
	if len(complete) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "no complete configurations in the stored slice")
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", table+".csv"))
	fw := flushWriter{w, flusherOf(w)}
	var streamErr error
	if table == "measurements" {
		streamErr = experiments.StreamMeasurementsCSVFrom(r.Context(), d, ref, complete, fw, s.opts.Workers)
	} else {
		streamErr = experiments.StreamAggregatesCSVFrom(r.Context(), d, ref, complete, fw, s.opts.Workers)
	}
	_ = streamErr // status already committed; a broken stream is the signal
}

// handleStudyTrend replays the stored slice across technology
// generations (internal/trend) and serves the drift report.
func (s *Server) handleStudyTrend(w http.ResponseWriter, r *http.Request) {
	s.reqStudies.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	d := s.collectDataset(w, r)
	if d == nil {
		return
	}
	groups, err := parseGroups(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rep, err := trend.Analyze(d, groups)
	if err != nil {
		writeStudyAggError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
