package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzConfigParse drives the measure-request decoder with arbitrary
// bodies: it must never panic, and anything it accepts must be
// well-formed — resolved cells in request order, each with a stable
// cache key, and stable under a decode/re-encode round trip.
func FuzzConfigParse(f *testing.F) {
	f.Add(`{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`)
	f.Add(`{"seed":7,"cells":[{"benchmark":"jess","processor":"i5 (32)","config":{"cores":2,"smt":2,"clock_ghz":1.2,"turbo":false}}]}`)
	f.Add(`{"cells":[{"benchmark":"vips","processor":"Atom (45)","config":{"cores":1,"smt":1,"clock_ghz":1e999,"turbo":true}}]}`)
	f.Add(`{"cells":[]}`)
	f.Add(`{"cellz":[]}`)
	f.Add(`{"cells":[{}]} trailing`)
	f.Add(`[1,2,3]`)
	f.Add(`"just a string"`)
	f.Add("\x00\xff{")
	f.Add(`{"seed":-9223372036854775808,"cells":[{"benchmark":"db","processor":"Pentium4 (130)"}]}`)

	f.Fuzz(func(t *testing.T, body string) {
		req, cells, err := DecodeMeasureRequest(strings.NewReader(body))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if req == nil || len(cells) == 0 || len(cells) > MaxCells {
			t.Fatalf("accepted request resolved to %d cells", len(cells))
		}
		if len(cells) != len(req.Cells) {
			t.Fatalf("%d cells resolved from %d requested", len(cells), len(req.Cells))
		}
		seed := int64(42)
		if req.Seed != nil {
			seed = *req.Seed
		}
		for i, c := range cells {
			if c.bench == nil || c.cp.Proc == nil {
				t.Fatalf("cell %d resolved with nil benchmark or processor", i)
			}
			if c.bench.Name != req.Cells[i].Benchmark || c.cp.Proc.Name != req.Cells[i].Processor {
				t.Fatalf("cell %d out of order: %s/%s vs %s/%s",
					i, c.bench.Name, c.cp.Proc.Name, req.Cells[i].Benchmark, req.Cells[i].Processor)
			}
			if err := c.cp.Proc.Validate(c.cp.Config); err != nil {
				t.Fatalf("cell %d accepted with invalid config: %v", i, err)
			}
			if cellKey(seed, c) != cellKey(seed, c) {
				t.Fatalf("cell %d cache key unstable", i)
			}
		}

		// Round trip: re-encoding an accepted request and decoding again
		// must accept and resolve to the same cells.
		reenc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode accepted request: %v", err)
		}
		req2, cells2, err := DecodeMeasureRequest(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("round-tripped request rejected: %v (body %s)", err, reenc)
		}
		if len(cells2) != len(cells) {
			t.Fatalf("round trip resolved %d cells, want %d", len(cells2), len(cells))
		}
		for i := range cells {
			if cellKey(seed, cells[i]) != cellKey(seed, cells2[i]) {
				t.Fatalf("round trip changed cell %d key", i)
			}
		}
		_ = req2
	})
}
