package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/experiments"
	"repro/internal/harness"
)

// maxRequestBytes bounds a request body; the largest legitimate measure
// request (MaxCells fully explicit cells) fits comfortably.
const maxRequestBytes = 4 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/measure            measure a batch of cells (cached)
//	GET  /v1/experiments        list experiment ids
//	GET  /v1/experiments/{id}   regenerate one paper artifact (cached)
//	GET  /v1/dataset            stream the full-study CSV
//	GET  /v1/traces             recent spans, Chrome trace-event JSON
//	GET  /healthz               liveness (503 while draining)
//	GET  /statsz                cache/queue/request counters
//	GET  /metricsz              counters + latency histograms, Prometheus text
//
// With a study store attached (Options.Store), the studies API mounts:
//
//	GET  /v1/studies            sealed study list + store inventory
//	GET  /v1/studies/rows       filtered stored rows, JSON
//	GET  /v1/studies/aggregates Section 2.6 aggregates over stored rows
//	GET  /v1/studies/export     stored slice as dataset CSVs
//	GET  /v1/studies/trend      Pareto-drift replay across technology nodes
//
// With an SLO engine attached (Options.SLO), the objective API mounts:
//
//	GET  /v1/sloz               objectives, error budgets, burn-rate alerts
//
// With a monitor attached (AttachMonitor), three more routes mount:
//
//	GET  /v1/alertz             fleet alerts (pending/firing/resolved), JSON
//	GET  /v1/traceview          assembled fleet traces: critical paths, RED, search
//	GET  /debug/dashboard       self-contained HTML fleet dashboard
//
// Every route runs under the observe middleware: a server span per
// request (stitched into the caller's trace via X-Trace-Id), the
// per-endpoint latency histogram, and one structured access line.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/measure", s.handleMeasure)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentIndex)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("GET /v1/dataset", s.handleDataset)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	if s.sloEng != nil {
		mux.HandleFunc("GET /v1/sloz", s.handleSloz)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	if s.opts.Store != nil {
		mux.HandleFunc("GET /v1/studies", s.handleStudiesIndex)
		mux.HandleFunc("GET /v1/studies/rows", s.handleStudyRows)
		mux.HandleFunc("GET /v1/studies/aggregates", s.handleStudyAggregates)
		mux.HandleFunc("GET /v1/studies/export", s.handleStudyExport)
		mux.HandleFunc("GET /v1/studies/trend", s.handleStudyTrend)
	}
	if s.mon != nil {
		// Attached via AttachMonitor: the daemon's own fleet view.
		mux.Handle("GET /v1/alertz", s.mon.AlertzHandler())
		mux.Handle("GET /v1/traceview", s.mon.TraceviewHandler())
		mux.Handle("GET /debug/dashboard", s.mon.DashboardHandler())
	}
	return s.observe(mux)
}

// writeJSON renders v with a fixed encoder configuration so equivalent
// states produce byte-identical bodies.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	s.reqMeasure.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	req, cells, err := DecodeMeasureRequest(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	seed := s.opts.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}
	l := laneInteractive
	if req.Lane == LaneBulk {
		l = laneBulk
	}
	full := req.Detail == DetailFull

	// The recorder (nil without a store) captures the batch for the
	// study log; only a fully measured batch commits.
	rec := s.ingest.begin(seed, len(cells))
	defer rec.release()

	if r.URL.Query().Get("stream") == "1" {
		s.reqMeasureStream.Add(1)
		s.measureStream(w, r, seed, l, full, cells, rec)
		return
	}

	results := make([]CellResult, len(cells))
	err = s.fanOutMeasure(r.Context(), seed, l, full, cells, func(i int, m *harness.Measurement, res *CellResult) {
		rec.observe(i, m)
		results[i] = *res
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "draining")
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// Client went away; nothing useful to write.
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.commitStudy(r.Context(), rec)
	writeJSON(w, http.StatusOK, MeasureResponse{Seed: seed, Cells: results})
}

// fanOutMeasure measures cells with a claim-by-index fan-out across a
// bounded set of request goroutines, calling sink (possibly from many
// goroutines at once) for each measured cell, and returns the first
// error. Real computation is admitted by the shared worker pool through
// lane l; these goroutines mostly wait on cache fills, so the cap only
// bounds bookkeeping, not parallelism.
func (s *Server) fanOutMeasure(ctx context.Context, seed int64, l lane, full bool, cells []cell, sink func(i int, m *harness.Measurement, res *CellResult)) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fan := len(cells)
	if fan > 64 {
		fan = 64
	}
	var next atomic.Int64
	// Mutex, not atomic.Value: measureCell failures carry heterogeneous
	// concrete error types, which atomic.Value.CompareAndSwap rejects by
	// panicking.
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for g := 0; g < fan; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) || ctx.Err() != nil {
					return
				}
				m, err := s.measureCell(ctx, seed, l, cells[i])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel()
					return
				}
				sink(i, m, cellResult(cells[i], m, full))
			}
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	// Parent cancellation (client disconnect) with no cell error still
	// means the batch is incomplete.
	return ctx.Err()
}

// measureStream serves one measure request over chunked NDJSON (see
// stream.go for the line vocabulary): the header line first, one cell
// line per completed cell in completion order, keep-alives while
// nothing is ready, and a terminal done or error line. The 200 status
// commits before any cell computes — a failure mid-batch surfaces as
// the terminal error line, and a severed stream (no terminal line)
// tells the client every unsent cell is unmeasured.
func (s *Server) measureStream(w http.ResponseWriter, r *http.Request, seed int64, l lane, full bool, cells []cell, rec *studyRecorder) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	sw := newStreamWriter(w, flusherOf(w))
	if err := sw.send(&StreamEvent{Header: &StreamHeader{Seed: seed, Cells: len(cells)}}); err != nil {
		return
	}
	sw.flush()

	ch := make(chan StreamCell, 64)
	var fanErr error
	go func() {
		// The deferred close runs after the fanErr write, and run only
		// reads fanErr after seeing the channel closed, so the error
		// handoff is race-free.
		defer close(ch)
		fanErr = s.fanOutMeasure(ctx, seed, l, full, cells, func(i int, m *harness.Measurement, res *CellResult) {
			rec.observe(i, m)
			ch <- StreamCell{Index: i, Result: *res}
		})
	}()
	if err := sw.run(ch, len(cells), s.opts.StreamKeepAlive, func() error { return fanErr }); err != nil {
		// The client went away mid-stream. Cancel the fan-out and drain
		// the channel so no sender blocks forever; in-flight cells finish
		// into the cache, where the retry will find them.
		cancel()
		for range ch {
		}
		return
	}
	// run saw the channel close, so fanErr is settled: a clean fan-out
	// means every cell measured, and the study commits.
	if fanErr == nil {
		s.commitStudy(ctx, rec)
	}
}

// commitStudy hands a completed batch to the store's ingest queue under
// a service.ingest span, so trace analytics can attribute durable-write
// time as its own pipeline stage. Without a store the recorder is inert
// and no span is minted.
func (s *Server) commitStudy(ctx context.Context, rec *studyRecorder) {
	if s.ingest == nil {
		rec.commit()
		return
	}
	_, span := s.tracer.StartSpan(ctx, "service.ingest")
	rec.commit()
	span.End()
}

// experimentRegistry maps URL ids to the paper's artifact generators.
// Table 3 is static specification data; everything else measures through
// the shared daemon-seed context.
var experimentRegistry = map[string]func(*experiments.Context) (any, error){
	"table2":   func(c *experiments.Context) (any, error) { return experiments.Table2(c, nil) },
	"table3":   func(*experiments.Context) (any, error) { return experiments.Table3(), nil },
	"table4":   func(c *experiments.Context) (any, error) { return experiments.Table4(c) },
	"table5":   func(c *experiments.Context) (any, error) { return experiments.Table5(c) },
	"figure1":  func(c *experiments.Context) (any, error) { return experiments.Figure1(c) },
	"figure2":  func(c *experiments.Context) (any, error) { return experiments.Figure2(c) },
	"figure3":  func(c *experiments.Context) (any, error) { return experiments.Figure3(c) },
	"figure4":  func(c *experiments.Context) (any, error) { return experiments.Figure4(c) },
	"figure5":  func(c *experiments.Context) (any, error) { return experiments.Figure5(c) },
	"figure6":  func(c *experiments.Context) (any, error) { return experiments.Figure6(c) },
	"figure7":  func(c *experiments.Context) (any, error) { return experiments.Figure7(c) },
	"figure8":  func(c *experiments.Context) (any, error) { return experiments.Figure8(c) },
	"figure9":  func(c *experiments.Context) (any, error) { return experiments.Figure9(c) },
	"figure10": func(c *experiments.Context) (any, error) { return experiments.Figure10(c) },
	"figure11": func(c *experiments.Context) (any, error) { return experiments.Figure11(c) },
	"figure12": func(c *experiments.Context) (any, error) { return experiments.Figure12(c) },
	// Section 7 extras: analyses beyond the numbered artifacts.
	"section31":       func(c *experiments.Context) (any, error) { return experiments.Section31(c) },
	"findings":        func(c *experiments.Context) (any, error) { return experiments.Findings(c) },
	"jvmcomparison":   func(c *experiments.Context) (any, error) { return experiments.JVMComparison(c) },
	"metercomparison": func(c *experiments.Context) (any, error) { return experiments.MeterComparison(c) },
	"kernelbug":       func(c *experiments.Context) (any, error) { return experiments.KernelBug(c) },
	"heapsweep":       func(c *experiments.Context) (any, error) { return experiments.HeapSweep(c) },
	"scaling":         func(c *experiments.Context) (any, error) { return experiments.ScalingAnalysis(c) },
	"breakdown":       func(c *experiments.Context) (any, error) { return experiments.PowerBreakdown(c) },
}

// ExperimentIDs lists the registry in stable order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(experimentRegistry))
	for id := range experimentRegistry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (s *Server) handleExperimentIndex(w http.ResponseWriter, r *http.Request) {
	s.reqExperiments.Add(1)
	writeJSON(w, http.StatusOK, struct {
		Experiments []string `json:"experiments"`
	}{ExperimentIDs()})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	s.reqExperiments.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	id := r.PathValue("id")
	body, err := s.experimentJSON(r.Context(), id)
	switch {
	case errors.Is(err, errNotFound):
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q", id))
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// experimentJSON returns the rendered artifact, cached by id: the
// generators draw on the shared measurement context, so each artifact is
// computed once per daemon lifetime.
func (s *Server) experimentJSON(ctx context.Context, id string) ([]byte, error) {
	gen, ok := experimentRegistry[id]
	if !ok {
		return nil, errNotFound
	}
	v, err := s.cache.GetOrCompute(ctx, "exp|"+id, func() (any, error) {
		return s.pool.Do(ctx, func() (any, error) {
			c, err := s.experimentsContext()
			if err != nil {
				return nil, err
			}
			res, err := gen(c)
			if err != nil {
				return nil, err
			}
			return json.Marshal(struct {
				ID     string `json:"id"`
				Seed   int64  `json:"seed"`
				Result any    `json:"result"`
			}{id, s.opts.Seed, res})
		})
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// flushWriter pushes chunks through to the client as soon as the CSV
// stream flushes, so a dataset download shows progress rather than
// buffering 2700 rows.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	s.reqDataset.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	table := r.URL.Query().Get("table")
	if table == "" {
		table = "measurements"
	}
	var stream func(context.Context, *experiments.Context) error
	switch table {
	case "measurements":
		stream = func(ctx context.Context, c *experiments.Context) error {
			return experiments.StreamMeasurementsCSV(ctx, c, nil, flushWriter{w, flusherOf(w)}, s.opts.Workers)
		}
	case "aggregates":
		stream = func(ctx context.Context, c *experiments.Context) error {
			return experiments.StreamAggregatesCSV(ctx, c, nil, flushWriter{w, flusherOf(w)}, s.opts.Workers)
		}
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown table %q (want measurements or aggregates)", table))
		return
	}
	c, err := s.experimentsContext()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", table+".csv"))
	// The status line is committed before streaming; a mid-stream error
	// can only abort the connection, which the CSV's missing final rows
	// make detectable.
	if err := stream(r.Context(), c); err != nil {
		_ = err // connection-level failure; nothing more to write
	}
}

func flusherOf(w http.ResponseWriter) http.Flusher {
	f, _ := w.(http.Flusher)
	return f
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{"draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
