package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0)
	var fills atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrCompute(context.Background(), "k", func() (any, error) {
				fills.Add(1)
				close(started)
				<-release
				return "value", nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	<-started
	// Hold the fill open until every other goroutine has observed the
	// in-flight entry (each increments the coalesced counter before
	// blocking on the fill), so all 15 exercise the singleflight path.
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Coalesced < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters coalesced", c.Stats().Coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("%d fills for one key, want 1", n)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != waiters-1 {
		t.Fatalf("stats %+v, want 1 miss and %d coalesced", st, waiters-1)
	}
}

func TestCacheHitCountsAndValues(t *testing.T) {
	c := NewCache(0)
	fill := func() (any, error) { return 42, nil }
	if _, err := c.GetOrCompute(context.Background(), "a", fill); err != nil {
		t.Fatal(err)
	}
	v, err := c.GetOrCompute(context.Background(), "a", func() (any, error) {
		t.Fatal("refilled a cached key")
		return nil, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("hit returned %v, %v", v, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := NewCache(0)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute(context.Background(), "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed fill left %d entries resident", c.Len())
	}
	v, err := c.GetOrCompute(context.Background(), "k", func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after error: %v, %v", v, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity rounds up to one entry per shard; filling many keys per
	// shard must keep residency at the bound and count evictions.
	c := NewCache(cacheShards)
	const keys = 40 * cacheShards
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if _, err := c.GetOrCompute(context.Background(), k, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got > cacheShards {
		t.Fatalf("%d entries resident, capacity %d", got, cacheShards)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if st.Misses != keys {
		t.Fatalf("%d misses, want %d", st.Misses, keys)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewCache(0)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _ = c.GetOrCompute(context.Background(), "slow", func() (any, error) {
			close(started)
			<-release
			return "done", nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := c.GetOrCompute(ctx, "slow", func() (any, error) { return nil, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want deadline exceeded", err)
	}
}

func TestPoolDrainRejectsNewWork(t *testing.T) {
	p := newWorkPool(2, 4)
	v, err := p.Do(context.Background(), func() (any, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("Do: %v, %v", v, err)
	}
	p.Close()
	if _, err := p.Do(context.Background(), func() (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Do err = %v, want ErrDraining", err)
	}
	p.Close() // idempotent
}

func TestPoolDrainCompletesQueuedWork(t *testing.T) {
	p := newWorkPool(1, 8)
	var done atomic.Int64
	var wg sync.WaitGroup
	block := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = p.Do(context.Background(), func() (any, error) { <-block; done.Add(1); return nil, nil })
	}()
	// Queue more behind the blocked one.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = p.Do(context.Background(), func() (any, error) { done.Add(1); return nil, nil })
		}()
	}
	// Let the submissions land, then drain while releasing the head.
	time.Sleep(20 * time.Millisecond)
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(block)
	}()
	p.Close()
	wg.Wait()
	if n := done.Load(); n != 5 {
		t.Fatalf("%d tasks completed across drain, want 5", n)
	}
}

func TestPoolQueueFullHonorsContext(t *testing.T) {
	p := newWorkPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	go p.Do(context.Background(), func() (any, error) { <-block; return nil, nil })
	time.Sleep(10 * time.Millisecond) // head task occupies the worker
	go p.Do(context.Background(), func() (any, error) { return nil, nil })
	time.Sleep(10 * time.Millisecond) // second task fills the queue
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Do(ctx, func() (any, error) { return nil, nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full-queue Do err = %v, want deadline exceeded", err)
	}
}

func TestValidateCacheShards(t *testing.T) {
	for _, n := range []int{0, 1, 2, 4, 16, 64, 1024} {
		if err := ValidateCacheShards(n); err != nil {
			t.Errorf("ValidateCacheShards(%d) = %v, want nil", n, err)
		}
	}
	for _, n := range []int{-1, -16, 3, 5, 6, 7, 9, 15, 17, 100} {
		if err := ValidateCacheShards(n); err == nil {
			t.Errorf("ValidateCacheShards(%d) accepted a count the shard mask cannot serve", n)
		}
	}
}

// TestNewCacheShardsRoundsUpToPowerOfTwo pins the constructor's repair
// of non-power-of-two counts: the masked router (h & (shards-1)) must
// always see a power of two, or part of the key space would fold onto
// a skewed subset of shards.
func TestNewCacheShardsRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {-3, 16}, // defaults
		{1, 1}, {2, 2}, {16, 16},
		{3, 4}, {5, 8}, {6, 8}, {9, 16}, {17, 32}, {100, 128},
	} {
		c := NewCacheShards(0, tc.in)
		if got := len(c.ShardLens()); got != tc.want {
			t.Errorf("NewCacheShards(0, %d) built %d shards, want %d", tc.in, got, tc.want)
		}
	}
}
