package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// syncBuffer lets the test read lines the handler goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// chromeEvents decodes a Chrome trace-event JSON body.
func chromeEvents(t *testing.T, body []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("trace body is not valid JSON: %v\n%s", err, body)
	}
	return events
}

// TestTracesEndpointStitchesCallerTrace drives the daemon the way the
// cluster coordinator does — a measure request carrying X-Trace-Id and
// X-Parent-Span — and asserts /v1/traces returns the server's spans
// under the caller's trace id with the caller's span as parent.
func TestTracesEndpointStitchesCallerTrace(t *testing.T) {
	srv := NewServer(Options{Seed: 42, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	const callerTrace, callerSpan = "00000000deadbeef", "00000000cafef00d"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/measure",
		strings.NewReader(`{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.HeaderTraceID, callerTrace)
	req.Header.Set(telemetry.HeaderParentSpan, callerSpan)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.HeaderTraceID); got != callerTrace {
		t.Fatalf("response trace header %q, want %q (must echo the caller's trace)", got, callerTrace)
	}

	code, body := get(t, ts.URL+"/v1/traces?trace="+callerTrace)
	if code != http.StatusOK {
		t.Fatalf("traces: %d %s", code, body)
	}
	events := chromeEvents(t, body)
	var names []string
	sawRoot := false
	for _, ev := range events {
		args := ev["args"].(map[string]any)
		if args["trace_id"] != callerTrace {
			t.Fatalf("trace filter leaked foreign span: %v", ev)
		}
		name := ev["name"].(string)
		names = append(names, name)
		if name == "http.measure" {
			if args["parent_id"] != callerSpan {
				t.Fatalf("server span parent %v, want the caller's span %s", args["parent_id"], callerSpan)
			}
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Fatalf("no http.measure span in trace, got %v", names)
	}
	if !strings.Contains(strings.Join(names, " "), "service.cell") {
		t.Fatalf("no service.cell span in trace, got %v", names)
	}

	// Unknown-trace filter returns an empty (but valid) event list, and
	// a malformed id is a 400.
	code, body = get(t, ts.URL+"/v1/traces?trace=0000000000000001")
	if code != http.StatusOK || len(chromeEvents(t, body)) != 0 {
		t.Fatalf("unknown trace: %d %s", code, body)
	}
	if code, _ = get(t, ts.URL+"/v1/traces?trace=xyz"); code != http.StatusBadRequest {
		t.Fatalf("malformed trace id: %d, want 400", code)
	}
}

// TestAccessLogLine asserts the one-line-per-request contract for
// workload endpoints: method, path, status, duration, and trace_id on a
// single structured Info line.
func TestAccessLogLine(t *testing.T) {
	out := &syncBuffer{}
	telemetry.SetLogOutput(out)
	telemetry.SetLogLevel(slog.LevelInfo)
	defer telemetry.SetLogOutput(os.Stderr)
	defer telemetry.SetLogLevel(slog.LevelWarn) // restore TestMain's quiet level

	srv := NewServer(Options{Seed: 42, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	if code, _ := get(t, ts.URL+"/v1/experiments"); code != http.StatusOK {
		t.Fatalf("experiments: %d", code)
	}
	// The access line is written after the response body is flushed, so
	// poll briefly rather than racing the handler's tail.
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for time.Now().Before(deadline) {
		for _, l := range strings.Split(out.String(), "\n") {
			if strings.Contains(l, "msg=request") && strings.Contains(l, "path=/v1/experiments") {
				line = l
			}
		}
		if line != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if line == "" {
		t.Fatalf("no access line for /v1/experiments in log output:\n%s", out.String())
	}
	for _, want := range []string{"subsystem=powerperfd", "method=GET", "status=200", "duration=", "trace_id="} {
		if !strings.Contains(line, want) {
			t.Errorf("access line missing %q: %s", want, line)
		}
	}
}

// TestMonitoringPlaneQuietAtInfo asserts the observer-effect guard: a
// scraped endpoint like /healthz must not emit Info access lines (its
// line is Debug-only) and must not mint a span — a monitor polling every
// few seconds would otherwise flood the log and evict workload spans
// from the bounded ring.
func TestMonitoringPlaneQuietAtInfo(t *testing.T) {
	out := &syncBuffer{}
	telemetry.SetLogOutput(out)
	telemetry.SetLogLevel(slog.LevelInfo)
	defer telemetry.SetLogOutput(os.Stderr)
	defer telemetry.SetLogLevel(slog.LevelWarn)

	srv := NewServer(Options{Seed: 42, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(telemetry.HeaderTraceID) != "" {
		t.Errorf("monitoring-plane response carries %s; scrapes must not mint spans", telemetry.HeaderTraceID)
	}

	// Debug visibility: the line exists when asked for.
	telemetry.SetLogLevel(slog.LevelDebug)
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	telemetry.SetLogLevel(slog.LevelInfo)

	deadline := time.Now().Add(2 * time.Second)
	var debugLine bool
	for time.Now().Before(deadline) && !debugLine {
		for _, l := range strings.Split(out.String(), "\n") {
			if strings.Contains(l, "msg=request") && strings.Contains(l, "path=/healthz") {
				if strings.Contains(l, "level=DEBUG") {
					debugLine = true
				} else {
					t.Fatalf("non-Debug access line for /healthz: %s", l)
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !debugLine {
		t.Fatalf("no Debug access line for /healthz in log output:\n%s", out.String())
	}
}

// TestMetricszLintsClean runs the full exposition page — counters,
// gauges, and the new histogram families — through the Prometheus
// linter, and checks the histogram families are present once traffic
// has flowed.
func TestMetricszLintsClean(t *testing.T) {
	_, ts := testServer(t)
	if code, b := postMeasure(t, ts.URL, `{"cells":[{"benchmark":"mcf","processor":"i7 (45)"}]}`); code != http.StatusOK {
		t.Fatalf("measure: %d %s", code, b)
	}

	code, body := get(t, ts.URL+"/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz: %d", code)
	}
	text := string(body)
	if problems := telemetry.LintPrometheus(text); len(problems) != 0 {
		t.Fatalf("/metricsz fails Prometheus lint:\n%s", strings.Join(problems, "\n"))
	}
	for _, family := range []string{
		"powerperfd_http_request_seconds_bucket{endpoint=\"measure\",le=",
		"powerperfd_cell_fill_seconds_bucket",
		"powerperf_measure_batch_seconds_bucket",
		"powerperf_measure_cell_seconds_bucket",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metricsz missing %s", family)
		}
	}
}

// TestEndpointFamilyBounded pins the cardinality guard: arbitrary
// request paths must collapse into the fixed label set.
func TestEndpointFamilyBounded(t *testing.T) {
	cases := map[string]string{
		"/v1/measure":        "measure",
		"/v1/experiments/t4": "experiments",
		"/v1/dataset":        "dataset",
		"/v1/traces":         "traces",
		"/healthz":           "healthz",
		"/statsz":            "statsz",
		"/metricsz":          "metricsz",
		"/anything/else":     "other",
		"/" + strings.Repeat("x", 512): "other",
	}
	for path, want := range cases {
		if got := endpointFamily(path); got != want {
			t.Errorf("endpointFamily(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestStatusWriterPreservesFlusher guards the dataset streamer's
// dependency: the telemetry wrapper must still expose Flush.
func TestStatusWriterPreservesFlusher(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	var w http.ResponseWriter = sw
	if _, ok := w.(http.Flusher); !ok {
		t.Fatal("statusWriter lost the Flusher interface")
	}
	fmt.Fprint(sw, "x")
	if sw.status != http.StatusOK {
		t.Fatalf("implicit status %d, want 200", sw.status)
	}
}
