package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The NDJSON measure stream (POST /v1/measure?stream=1): one JSON object
// per line, cells in completion order, each tagged with its request
// index so the client reassembles request order regardless of arrival
// order. The line vocabulary is closed — exactly one of the StreamEvent
// fields is set per line:
//
//	{"header":{"seed":42,"cells":122}}     first line, echoes the batch shape
//	{"cell":{"index":5,"result":{...}}}    one measured cell, any order
//	{"keepalive":true}                     heartbeat while cells compute
//	{"error":"..."}                        terminal: the batch failed
//	{"done":{"cells":122}}                 terminal: every cell was sent
//
// A stream that ends without a terminal line was truncated (backend
// death, severed connection) and the client must treat every unsent cell
// as unmeasured. Keep-alives let a client distinguish a slow backend
// from a dead connection without lowering its read deadline below the
// cost of a cold cell.

// MaxStreamLineBytes bounds one stream line. The largest legitimate line
// is a full-detail cell (twenty run samples with counters, ~6 KiB);
// the bound leaves two orders of magnitude of headroom while keeping a
// malicious or corrupted stream from ballooning the decoder's buffer.
const MaxStreamLineBytes = 1 << 20

// ErrStreamLineTooLong marks a stream line exceeding MaxStreamLineBytes;
// the decoder refuses to buffer it and the stream is poisoned.
var ErrStreamLineTooLong = errors.New("service: stream line exceeds MaxStreamLineBytes")

// StreamHeader is the first line of a measure stream.
type StreamHeader struct {
	Seed  int64 `json:"seed"`
	Cells int   `json:"cells"`
}

// StreamCell is one measured cell: the index into the request's cell
// list plus the result, exactly the shape the buffered response carries.
type StreamCell struct {
	Index  int        `json:"index"`
	Result CellResult `json:"result"`
}

// StreamDone is the terminal line of a successful stream.
type StreamDone struct {
	Cells int `json:"cells"`
}

// StreamEvent is one line of the measure stream; exactly one field is
// set per line.
type StreamEvent struct {
	Header    *StreamHeader `json:"header,omitempty"`
	Cell      *StreamCell   `json:"cell,omitempty"`
	KeepAlive bool          `json:"keepalive,omitempty"`
	Error     string        `json:"error,omitempty"`
	Done      *StreamDone   `json:"done,omitempty"`
}

// StreamDecoder reads measure-stream lines from r with a hard per-line
// buffer bound: truncated streams surface as io.ErrUnexpectedEOF,
// oversized lines as ErrStreamLineTooLong, and malformed JSON as a
// normal decode error — never a panic, and never a buffer larger than
// MaxStreamLineBytes (the line buffer is reused across lines, so a
// long stream allocates one buffer, not one per line). Hardened by
// FuzzStreamDecode.
type StreamDecoder struct {
	r    *bufio.Reader
	line []byte
	err  error // sticky: a poisoned stream stays poisoned
}

// NewStreamDecoder builds a decoder over r.
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	return &StreamDecoder{r: bufio.NewReader(r)}
}

// Next returns the next stream event. Keep-alive lines are returned
// like any other event — callers skip them. io.EOF is returned only at
// a clean boundary after a complete line; EOF mid-line means the stream
// was severed and surfaces as io.ErrUnexpectedEOF.
func (d *StreamDecoder) Next() (*StreamEvent, error) {
	if d.err != nil {
		return nil, d.err
	}
	ev, err := d.next()
	if err != nil && err != io.EOF {
		d.err = err
	}
	return ev, err
}

func (d *StreamDecoder) next() (*StreamEvent, error) {
	d.line = d.line[:0]
	for {
		chunk, err := d.r.ReadSlice('\n')
		if len(d.line)+len(chunk) > MaxStreamLineBytes {
			return nil, ErrStreamLineTooLong
		}
		d.line = append(d.line, chunk...)
		switch err {
		case nil:
			// Complete line.
		case bufio.ErrBufferFull:
			continue // long line spanning reader buffers; keep accumulating
		case io.EOF:
			if len(d.line) == 0 {
				return nil, io.EOF
			}
			// Bytes with no trailing newline: the stream died mid-line.
			return nil, io.ErrUnexpectedEOF
		default:
			return nil, err
		}
		break
	}
	// Trim the newline (and a CR for robustness against proxies).
	line := d.line[:len(d.line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) == 0 {
		// Blank lines are not part of the protocol, but tolerating them
		// costs nothing and keeps hand-driven testing pleasant.
		return d.next()
	}
	var ev StreamEvent
	if err := json.Unmarshal(line, &ev); err != nil {
		return nil, fmt.Errorf("service: decode stream line: %w", err)
	}
	if ev.Header == nil && ev.Cell == nil && !ev.KeepAlive && ev.Error == "" && ev.Done == nil {
		return nil, errors.New("service: unrecognized stream line")
	}
	return &ev, nil
}

// streamWriter serializes measure-stream lines onto one HTTP response:
// cells arrive on a channel from the measurement fan-out, keep-alives
// fire while no cell is ready, and the response flushes whenever the
// channel momentarily drains (batching flushes under load, staying
// prompt when cells trickle).
type streamWriter struct {
	enc     *json.Encoder
	flusher http.Flusher
}

func newStreamWriter(w io.Writer, f http.Flusher) *streamWriter {
	// json.Encoder terminates every value with '\n' — exactly NDJSON.
	return &streamWriter{enc: json.NewEncoder(w), flusher: f}
}

func (sw *streamWriter) send(ev *StreamEvent) error {
	return sw.enc.Encode(ev)
}

func (sw *streamWriter) flush() {
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
}

// run drains cells until the channel closes, then emits the terminal
// line: the batch's error if errFn reports one, the done line otherwise.
// keepAlive <= 0 selects the default heartbeat.
func (sw *streamWriter) run(cells <-chan StreamCell, total int, keepAlive time.Duration, errFn func() error) error {
	if keepAlive <= 0 {
		keepAlive = defaultStreamKeepAlive
	}
	t := time.NewTimer(keepAlive)
	defer t.Stop()
	sent := 0
	for cells != nil {
		select {
		case c, ok := <-cells:
			if !ok {
				cells = nil
				continue
			}
			if err := sw.send(&StreamEvent{Cell: &c}); err != nil {
				return err
			}
			sent++
			// Opportunistic flush: only when no further cell is ready,
			// so a hot backend coalesces many lines per flush.
			if len(cells) == 0 {
				sw.flush()
			}
			if !t.Stop() {
				<-t.C
			}
			t.Reset(keepAlive)
		case <-t.C:
			if err := sw.send(&StreamEvent{KeepAlive: true}); err != nil {
				return err
			}
			sw.flush()
			t.Reset(keepAlive)
		}
	}
	if err := errFn(); err != nil {
		if werr := sw.send(&StreamEvent{Error: err.Error()}); werr != nil {
			return werr
		}
		sw.flush()
		return nil
	}
	if err := sw.send(&StreamEvent{Done: &StreamDone{Cells: sent}}); err != nil {
		return err
	}
	sw.flush()
	return nil
}

// defaultStreamKeepAlive is the heartbeat cadence when Options leaves
// StreamKeepAlive unset: frequent enough that a client waiting on a
// cold JVM row sees liveness, rare enough to be invisible in traffic.
const defaultStreamKeepAlive = 5 * time.Second
