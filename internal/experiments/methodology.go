package experiments

import (
	"repro/internal/governor"
	"repro/internal/meters"
	"repro/internal/proc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MeterRow is one processor's chip-versus-wall comparison: what a
// whole-system clamp ammeter would have reported for the same runs the
// paper measured at the processor rail (Section 5's methodological
// contrast with Isci & Martonosi and Le Sueur & Heiser).
type MeterRow struct {
	Proc string
	// ChipWatts is the paper-style on-chip average power.
	ChipWatts float64
	// WallWatts is the clamp-ammeter whole-system reading.
	WallWatts float64
	// ChipFraction is ChipWatts over WallWatts.
	ChipFraction float64
	// ChipSpread and WallSpread are (max-min)/min across benchmarks:
	// how much of the chip's benchmark sensitivity survives at the wall.
	ChipSpread float64
	WallSpread float64
}

// MeterComparisonResult quantifies why the paper measures at the rail.
type MeterComparisonResult struct {
	Rows []MeterRow
}

// MeterComparison runs every benchmark on every stock processor and
// reads both the chip rail and a simulated whole-system clamp ammeter.
func MeterComparison(c *Context) (*MeterComparisonResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	clamp := meters.ClampAmmeter{Sys: meters.DefaultSystem()}
	res := &MeterComparisonResult{}
	for _, cp := range proc.StockConfigs() {
		var chip, wall []float64
		for _, b := range workload.All() {
			m, err := c.H.Measure(b, cp)
			if err != nil {
				return nil, err
			}
			// Memory traffic from the measured counters.
			traffic := 0.0
			if m.Seconds > 0 {
				traffic = m.Counters.LLCMisses * 64 / m.Seconds / 1e9
			}
			w, err := clamp.SystemWatts(m.Watts, traffic)
			if err != nil {
				return nil, err
			}
			chip = append(chip, m.Watts)
			wall = append(wall, w)
		}
		row := MeterRow{
			Proc:      cp.Proc.Name,
			ChipWatts: stats.Mean(chip),
			WallWatts: stats.Mean(wall),
		}
		row.ChipFraction = row.ChipWatts / row.WallWatts
		row.ChipSpread = (stats.Max(chip) - stats.Min(chip)) / stats.Min(chip)
		row.WallSpread = (stats.Max(wall) - stats.Min(wall)) / stats.Min(wall)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// KernelBugResult is the Section 2.8 ablation: BIOS core disabling
// versus the buggy OS hotplug path, per multicore processor.
type KernelBugResult struct {
	Reports []governor.BugReport
}

// KernelBug evaluates both offlining methods on the fleet's multicore
// parts, reproducing the anomaly that pushed the paper to the BIOS.
func KernelBug(c *Context) (*KernelBugResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res := &KernelBugResult{}
	for _, p := range proc.Fleet() {
		if p.Spec.Cores < 2 {
			continue
		}
		r, err := governor.RunBugReport(p, 0.8, 0.7)
		if err != nil {
			return nil, err
		}
		res.Reports = append(res.Reports, r)
	}
	return res, nil
}
