// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 2-5, Figures 1-12) on top of the measurement
// harness. Each generator returns a typed result carrying exactly the
// series the paper plots, so the report package can render them and the
// benchmark suite can regenerate them one by one.
package experiments

import (
	"errors"
	"fmt"

	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/workload"
)

// Context carries the shared harness and normalization reference. All
// experiments drawing from one Context share its measurement cache, the
// way the paper's analyses all draw on one dataset.
type Context struct {
	H   *harness.Harness
	Ref *harness.Reference
}

// NewContext builds a harness (calibrating the sensor rig) and measures
// the normalization reference.
func NewContext(seed int64) (*Context, error) {
	h, err := harness.New(seed)
	if err != nil {
		return nil, err
	}
	ref, err := h.Reference()
	if err != nil {
		return nil, err
	}
	return &Context{H: h, Ref: ref}, nil
}

// Ratio is a relative comparison of two configurations, as plotted in
// the feature-analysis bar charts: performance, power, and energy of the
// numerator configuration over the denominator.
type Ratio struct {
	Label  string
	Perf   float64
	Power  float64
	Energy float64
}

// GroupEnergy is one configuration comparison's energy ratio broken down
// by workload group, the (b) panel of each feature-analysis figure.
type GroupEnergy struct {
	Label  string
	Energy [4]float64 // indexed by workload.Group
}

// compare measures two configurations over all groups and returns the
// weighted-average ratios and the per-group energy breakdown.
func (c *Context) compare(label string, num, den proc.ConfiguredProcessor) (Ratio, GroupEnergy, error) {
	rn, err := c.H.MeasureConfig(num, c.Ref, nil)
	if err != nil {
		return Ratio{}, GroupEnergy{}, err
	}
	rd, err := c.H.MeasureConfig(den, c.Ref, nil)
	if err != nil {
		return Ratio{}, GroupEnergy{}, err
	}
	if rd.PerfW <= 0 || rd.WattsW <= 0 || rd.EnergyW <= 0 {
		return Ratio{}, GroupEnergy{}, fmt.Errorf("experiments: degenerate denominator for %s", label)
	}
	ratio := Ratio{
		Label:  label,
		Perf:   rn.PerfW / rd.PerfW,
		Power:  rn.WattsW / rd.WattsW,
		Energy: rn.EnergyW / rd.EnergyW,
	}
	ge := GroupEnergy{Label: label}
	for _, g := range workload.Groups() {
		ge.Energy[int(g)] = rn.Groups[int(g)].Energy / rd.Groups[int(g)].Energy
	}
	return ratio, ge, nil
}

// config builds and validates a configuration for a named processor.
func config(name string, cores, smt int, clock float64, turbo bool) (proc.ConfiguredProcessor, error) {
	p, err := proc.ByName(name)
	if err != nil {
		return proc.ConfiguredProcessor{}, err
	}
	cfg := proc.Config{Cores: cores, SMTWays: smt, ClockGHz: clock, Turbo: turbo}
	if err := p.Validate(cfg); err != nil {
		return proc.ConfiguredProcessor{}, err
	}
	return proc.ConfiguredProcessor{Proc: p, Config: cfg}, nil
}

// stock returns a processor's stock configuration.
func stock(name string) (proc.ConfiguredProcessor, error) {
	p, err := proc.ByName(name)
	if err != nil {
		return proc.ConfiguredProcessor{}, err
	}
	return proc.ConfiguredProcessor{Proc: p, Config: p.Stock()}, nil
}

// errNilContext guards the exported generators.
var errNilContext = errors.New("experiments: nil context")

func (c *Context) check() error {
	if c == nil || c.H == nil || c.Ref == nil {
		return errNilContext
	}
	return nil
}
