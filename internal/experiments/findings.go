package experiments

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/workload"
)

// Finding is one of the paper's thirteen named findings, evaluated
// against this study's measurements.
type Finding struct {
	// ID is the paper's label, e.g. "Architecture 3" or "Workload 1".
	ID string
	// Statement paraphrases the finding.
	Statement string
	// Holds reports whether the measured data supports it.
	Holds bool
	// Detail quantifies the check.
	Detail string
}

// FindingsResult is the reproduction report: every named finding checked
// against the measured dataset.
type FindingsResult struct {
	Findings []Finding
}

// AllHold reports whether every finding reproduced.
func (r *FindingsResult) AllHold() bool {
	for _, f := range r.Findings {
		if !f.Holds {
			return false
		}
	}
	return true
}

// Findings evaluates all four workload and nine architecture findings.
func Findings(c *Context) (*FindingsResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res := &FindingsResult{}
	add := func(id, statement string, holds bool, detail string) {
		res.Findings = append(res.Findings, Finding{
			ID: id, Statement: statement, Holds: holds, Detail: detail,
		})
	}

	// --- Workload findings -------------------------------------------
	f6, err := Figure6(c)
	if err != nil {
		return nil, err
	}
	sum, min := 0.0, 10.0
	for _, p := range f6.Points {
		sum += p.Speedup
		if p.Speedup < min {
			min = p.Speedup
		}
	}
	avg := sum / float64(len(f6.Points))
	add("Workload 1",
		"the JVM induces parallelism into single-threaded Java execution",
		avg > 1.05 && min > 0.95,
		fmt.Sprintf("single-threaded Java gains %.0f%% on average from a 2nd core", (avg-1)*100))

	f5, err := Figure5(c)
	if err != nil {
		return nil, err
	}
	var p4JN float64
	for i, r := range f5.Ratios {
		if r.Label == proc.Pentium4Name {
			p4JN = f5.Groups[i].Energy[int(workload.JavaNonScalable)]
		}
	}
	add("Workload 2",
		"SMT degrades Java Non-scalable on the Pentium 4",
		p4JN > 1.0,
		fmt.Sprintf("P4 Java Non-scalable SMT energy ratio %.2f", p4JN))

	t4, err := Table4(c)
	if err != nil {
		return nil, err
	}
	nnOutlier := true
	detail3 := ""
	for _, row := range t4 {
		r := row.Result
		name := r.CP.Proc.Name
		if name != proc.I7Name && name != proc.I5Name {
			continue
		}
		nn := r.Groups[int(workload.NativeNonScalable)].Watts
		for _, g := range workload.Groups() {
			if g == workload.NativeNonScalable {
				continue
			}
			if nn >= r.Groups[int(g)].Watts {
				nnOutlier = false
			}
		}
		detail3 += fmt.Sprintf("%s NN %.1fW vs others %.1f-%.1fW; ", name, nn,
			minGroupWatts(r, workload.NativeNonScalable), r.WattsMax)
	}
	add("Workload 3",
		"Native Non-scalable's power/performance behaviour differs from the other groups (the SPEC outlier)",
		nnOutlier, strings.TrimSuffix(detail3, "; "))

	t5, err := Table5(c)
	if err != nil {
		return nil, err
	}
	sharedAll := 0
	for _, l := range t5.Efficient["Native Non-scalable"] {
		for _, sel := range []string{"Native Scalable", "Java Scalable"} {
			for _, o := range t5.Efficient[sel] {
				if l == o {
					sharedAll++
				}
			}
		}
	}
	add("Workload 4",
		"Pareto-efficient design is very sensitive to workload",
		sharedAll <= 2,
		fmt.Sprintf("Native Non-scalable shares only %d frontier points with the scalable groups", sharedAll))

	// --- Architecture findings ---------------------------------------
	f4, err := Figure4(c)
	if err != nil {
		return nil, err
	}
	add("Architecture 1",
		"enabling a core is not consistently energy efficient",
		f4.Ratios[0].Energy > f4.Ratios[1].Energy &&
			f4.Groups[0].Energy[int(workload.NativeNonScalable)] >= 1.0,
		fmt.Sprintf("CMP energy i7 %.2f vs i5 %.2f", f4.Ratios[0].Energy, f4.Ratios[1].Energy))

	var atomE, i5E float64
	for _, r := range f5.Ratios {
		switch r.Label {
		case proc.Atom45Name:
			atomE = r.Energy
		case proc.I5Name:
			i5E = r.Energy
		}
	}
	add("Architecture 2",
		"SMT delivers substantial energy savings on the i5 and Atom",
		atomE < 0.95 && i5E < 0.95,
		fmt.Sprintf("SMT energy ratios: Atom %.2f, i5 %.2f", atomE, i5E))

	f7, err := Figure7(c)
	if err != nil {
		return nil, err
	}
	var i5D, i7D, c2dD float64
	for _, srs := range f7.Series {
		switch srs.Proc {
		case proc.I5Name:
			i5D = srs.PerDoublingEnergy
		case proc.I7Name:
			i7D = srs.PerDoublingEnergy
		case proc.Core2D45Name:
			c2dD = srs.PerDoublingEnergy
		}
	}
	add("Architecture 3",
		"the i5's energy is flat across its clock range; the i7 and Core 2D pay heavily",
		i5D < 0.1 && i7D > 0.35 && c2dD > 0.3,
		fmt.Sprintf("energy per clock doubling: i5 %+.0f%%, i7 %+.0f%%, C2D45 %+.0f%%",
			i5D*100, i7D*100, c2dD*100))

	f8, err := Figure8(c)
	if err != nil {
		return nil, err
	}
	add("Architecture 4",
		"a die shrink cuts power deeply even at matched clocks",
		f8.Matched[0].Power < 0.75 && f8.Matched[1].Power < 0.85,
		fmt.Sprintf("matched-clock power ratios: Core %.2f, Nehalem %.2f",
			f8.Matched[0].Power, f8.Matched[1].Power))
	add("Architecture 5",
		"the 45->32nm shrink repeats the previous generation's energy gains",
		f8.Matched[1].Energy/f8.Matched[0].Energy < 1.7,
		fmt.Sprintf("matched-clock energy ratios: Core %.2f vs Nehalem %.2f",
			f8.Matched[0].Energy, f8.Matched[1].Energy))

	f9, err := Figure9(c)
	if err != nil {
		return nil, err
	}
	byLabel := map[string]Ratio{}
	for _, r := range f9.Ratios {
		byLabel[r.Label] = r
	}
	c45 := byLabel["Core: i7/C2D(45)"]
	add("Architecture 6",
		"Nehalem performs modestly better than Core at matched configuration",
		c45.Perf > 1.05 && c45.Perf < 1.4,
		fmt.Sprintf("i7/C2D(45) matched perf ratio %.2f", c45.Perf))
	add("Architecture 7",
		"at the same node, Nehalem's energy efficiency is similar to Core and Bonnell",
		c45.Energy > 0.7 && c45.Energy < 1.3 &&
			byLabel["Bonnell: i7/AtomD"].Energy > 0.5 && byLabel["Bonnell: i7/AtomD"].Energy < 1.3,
		fmt.Sprintf("same-node energy ratios: vs Core %.2f, vs Bonnell %.2f",
			c45.Energy, byLabel["Bonnell: i7/AtomD"].Energy))

	f10, err := Figure10(c)
	if err != nil {
		return nil, err
	}
	i7Turbo, i5Turbo := f10.Ratios[0].Energy, f10.Ratios[2].Energy
	add("Architecture 8",
		"Turbo Boost is not energy efficient on the i7 (the i5 stays near neutral)",
		i7Turbo > 1.1 && i5Turbo < 1.1,
		fmt.Sprintf("turbo energy ratios: i7 %.2f, i5 %.2f", i7Turbo, i5Turbo))

	f11, err := Figure11(c)
	if err != nil {
		return nil, err
	}
	perTrans := map[string]float64{}
	for _, p := range f11.Points {
		perTrans[p.Proc] = p.WattsPerMTrans
	}
	nehalemRatio := ratioOf(perTrans[proc.I7Name], perTrans[proc.I5Name])
	coreRatio := ratioOf(perTrans[proc.Core2D65Name], perTrans[proc.Core2D45Name])
	crossRatio := ratioOf(perTrans[proc.Pentium4Name], perTrans[proc.I5Name])
	add("Architecture 9",
		"power per transistor is consistent within a microarchitecture family, not across them",
		nehalemRatio < 2 && coreRatio < 2 && crossRatio > 3,
		fmt.Sprintf("within-family spreads %.1fx/%.1fx vs cross-family %.1fx",
			nehalemRatio, coreRatio, crossRatio))

	return res, nil
}

func minGroupWatts(r *harness.ConfigResult, skip workload.Group) float64 {
	min := 1e18
	for _, g := range workload.Groups() {
		if g == skip {
			continue
		}
		if w := r.Groups[int(g)].Watts; w < min {
			min = w
		}
	}
	return min
}

func ratioOf(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 0
	}
	return a / b
}
