package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/report"
	"repro/internal/workload"
)

// MeasurementsHeader is the column set of the companion dataset's
// measurements.csv, shared by the fullstudy generator and the powerperfd
// dataset endpoint so both emit byte-identical files.
var MeasurementsHeader = []string{
	"configuration", "benchmark", "suite", "group",
	"seconds", "watts", "energy_j",
	"perf_norm", "energy_norm",
	"time_ci_rel", "power_ci_rel", "runs",
	"cpi", "llc_mpki", "dtlb_mpki", "service_frac",
}

// AggregatesHeader is the column set of aggregates.csv.
var AggregatesHeader = []string{
	"configuration", "group", "perf_norm", "watts", "energy_norm", "benchmarks",
}

// fmtG renders dataset numbers the way the companion CSV does.
func fmtG(v float64) string { return fmt.Sprintf("%.6g", v) }

// Source is a measurement provider for the dataset streamers: the local
// harness satisfies it directly, and the cluster coordinator satisfies
// it over HTTP. The determinism contract makes the two interchangeable —
// both return bit-identical measurements for the same cells, so the
// streamed CSVs are byte-identical regardless of the source.
type Source interface {
	MeasureBatch(ctx context.Context, jobs []harness.Job, workers int) ([]*harness.Measurement, error)
}

// StreamMeasurementsCSV measures the cross product of cps and all 61
// benchmarks and streams measurements.csv rows to w as configurations
// complete, flushing at configuration boundaries so HTTP clients see
// incremental progress. Nil cps selects the paper's 45 configurations.
// The grid is pre-warmed through the worker pool (workers <= 0 selects
// GOMAXPROCS); ctx aborts at measurement-cell granularity.
func StreamMeasurementsCSV(ctx context.Context, c *Context, cps []proc.ConfiguredProcessor, w io.Writer, workers int) error {
	if err := c.check(); err != nil {
		return err
	}
	return StreamMeasurementsCSVFrom(ctx, c.H, c.Ref, cps, w, workers)
}

// StreamMeasurementsCSVFrom is StreamMeasurementsCSV over any Source.
func StreamMeasurementsCSVFrom(ctx context.Context, src Source, ref *harness.Reference, cps []proc.ConfiguredProcessor, w io.Writer, workers int) error {
	if cps == nil {
		cps = proc.ConfigSpace()
	}
	jobs := harness.GridJobs(cps, nil)
	ms, err := src.MeasureBatch(ctx, jobs, workers)
	if err != nil {
		return err
	}
	s, err := report.NewZeroCSVStream(w, MeasurementsHeader...)
	if err != nil {
		return err
	}
	// GridJobs iterates configurations outer, benchmarks inner — the
	// row order of the committed dataset — so the batch result is the
	// row stream. The zero-alloc stream renders numbers with the same
	// bytes fmt's %.6g produced, so the committed goldens are unchanged;
	// the benchmark list is resolved once, not per configuration.
	benches := workload.All()
	i := 0
	for _, cp := range cps {
		if err := ctx.Err(); err != nil {
			return err
		}
		cfg := cp.String()
		for _, b := range benches {
			m := ms[i]
			i++
			n, err := ref.Normalize(m)
			if err != nil {
				return err
			}
			s.Field(cfg)
			s.Field(b.Name)
			s.Field(string(b.Suite))
			s.Field(b.Group.String())
			s.FloatG6(m.Seconds)
			s.FloatG6(m.Watts)
			s.FloatG6(m.EnergyJ)
			s.FloatG6(n.Perf)
			s.FloatG6(n.Energy)
			s.FloatG6(m.TimeCI.Relative())
			s.FloatG6(m.PowerCI.Relative())
			s.Int(len(m.Runs))
			s.FloatG6(m.Counters.CPI())
			s.FloatG6(m.Counters.LLCMPKI())
			s.FloatG6(m.Counters.DTLBMPKI())
			s.FloatG6(m.Counters.ServiceFraction())
			if err := s.EndRow(); err != nil {
				return err
			}
		}
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return s.Close()
}

// StreamAggregatesCSV streams aggregates.csv rows (per-group and
// equally weighted averages per configuration, Section 2.6) to w. Nil
// cps selects the paper's 45 configurations.
func StreamAggregatesCSV(ctx context.Context, c *Context, cps []proc.ConfiguredProcessor, w io.Writer, workers int) error {
	if err := c.check(); err != nil {
		return err
	}
	return StreamAggregatesCSVFrom(ctx, c.H, c.Ref, cps, w, workers)
}

// StreamAggregatesCSVFrom is StreamAggregatesCSV over any Source.
func StreamAggregatesCSVFrom(ctx context.Context, src Source, ref *harness.Reference, cps []proc.ConfiguredProcessor, w io.Writer, workers int) error {
	if cps == nil {
		cps = proc.ConfigSpace()
	}
	jobs := harness.GridJobs(cps, nil)
	ms, err := src.MeasureBatch(ctx, jobs, workers)
	if err != nil {
		return err
	}
	// Index the batch so AggregateConfig can consume it as a MeasureFunc
	// in its own (group-major) order.
	byCell := make(map[string]*harness.Measurement, len(ms))
	for i, m := range ms {
		byCell[jobs[i].Bench.Name+"|"+jobs[i].CP.String()] = m
	}
	lookup := func(b *workload.Benchmark, cp proc.ConfiguredProcessor) (*harness.Measurement, error) {
		m, ok := byCell[b.Name+"|"+cp.String()]
		if !ok {
			return nil, fmt.Errorf("experiments: %s on %s missing from batch", b.Name, cp)
		}
		return m, nil
	}
	s, err := report.NewZeroCSVStream(w, AggregatesHeader...)
	if err != nil {
		return err
	}
	for _, cp := range cps {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := harness.AggregateConfig(cp, lookup, ref, nil)
		if err != nil {
			return err
		}
		cfg := cp.String()
		for _, g := range workload.Groups() {
			gr := res.Groups[int(g)]
			s.Field(cfg)
			s.Field(g.String())
			s.FloatG6(gr.Perf)
			s.FloatG6(gr.Watts)
			s.FloatG6(gr.Energy)
			s.Int(gr.N)
			if err := s.EndRow(); err != nil {
				return err
			}
		}
		s.Field(cfg)
		s.Field("Average")
		s.FloatG6(res.PerfW)
		s.FloatG6(res.WattsW)
		s.FloatG6(res.EnergyW)
		s.Int(61)
		if err := s.EndRow(); err != nil {
			return err
		}
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return s.Close()
}
