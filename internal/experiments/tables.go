package experiments

import (
	"sort"

	"repro/internal/harness"
	"repro/internal/pareto"
	"repro/internal/proc"
	"repro/internal/workload"
)

// Table2Result reproduces Table 2: aggregate 95% confidence intervals for
// measured execution time and power per workload group, across the given
// configurations (the paper aggregates across all of its processor
// configurations).
type Table2Result struct {
	Table *harness.CITable
	// Configs is how many configurations were aggregated.
	Configs int
}

// Table2 regenerates Table 2. Passing nil configurations uses the eight
// stock processors; the full study passes proc.ConfigSpace().
func Table2(c *Context, cps []proc.ConfiguredProcessor) (*Table2Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	if cps == nil {
		cps = proc.StockConfigs()
	}
	tbl, err := c.H.ConfidenceTable(cps)
	if err != nil {
		return nil, err
	}
	return &Table2Result{Table: tbl, Configs: len(cps)}, nil
}

// Table3Row is one processor's specification row.
type Table3Row struct {
	Proc *proc.Processor
}

// Table3 reproduces the processor-specification table. It is static
// data, included so the full study regenerates every numbered artifact.
func Table3() []Table3Row {
	fleet := proc.Fleet()
	rows := make([]Table3Row, len(fleet))
	for i, p := range fleet {
		rows[i] = Table3Row{Proc: p}
	}
	return rows
}

// Table4Row is one processor's row of Table 4: normalized performance
// and average power per group with fleet-wide ranks.
type Table4Row struct {
	Result *harness.ConfigResult
	// PerfRank and PowerRank rank this processor's weighted average
	// among the fleet (1 = fastest / most power-hungry, as the paper's
	// small italics do).
	PerfRank  int
	PowerRank int
}

// Table4 regenerates Table 4 across the eight stock processors.
func Table4(c *Context) ([]Table4Row, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	stocks := proc.StockConfigs()
	rows := make([]Table4Row, len(stocks))
	for i, cp := range stocks {
		res, err := c.H.MeasureConfig(cp, c.Ref, nil)
		if err != nil {
			return nil, err
		}
		rows[i] = Table4Row{Result: res}
	}
	rank(rows, func(r Table4Row) float64 { return r.Result.PerfW }, func(r *Table4Row, n int) { r.PerfRank = n })
	rank(rows, func(r Table4Row) float64 { return r.Result.WattsW }, func(r *Table4Row, n int) { r.PowerRank = n })
	return rows, nil
}

// rank assigns descending ranks (1 = highest value).
func rank(rows []Table4Row, key func(Table4Row) float64, set func(*Table4Row, int)) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return key(rows[idx[a]]) > key(rows[idx[b]]) })
	for n, i := range idx {
		set(&rows[i], n+1)
	}
}

// Table5Result reproduces Table 5: the Pareto-efficient 45nm
// configurations per workload group and for the equally weighted
// average.
type Table5Result struct {
	// Efficient maps each selector ("Average" or a group name) to the
	// labels of its Pareto-efficient configurations.
	Efficient map[string][]string
	// All lists every 45nm configuration label considered.
	All []string
	// Points holds the underlying tradeoff points per selector, for
	// Figure 12's curves.
	Points map[string][]pareto.Point
}

// Table5 regenerates the Pareto analysis over the 29 configurations of
// the four 45nm processors (Section 4.2).
func Table5(c *Context) (*Table5Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	cps := proc.ConfigSpace45nm()
	res := &Table5Result{
		Efficient: make(map[string][]string),
		Points:    make(map[string][]pareto.Point),
	}
	selectors := []string{"Average"}
	for _, g := range workload.Groups() {
		selectors = append(selectors, g.String())
	}
	for _, cp := range cps {
		res.All = append(res.All, cp.String())
		cr, err := c.H.MeasureConfig(cp, c.Ref, nil)
		if err != nil {
			return nil, err
		}
		res.Points["Average"] = append(res.Points["Average"], pareto.Point{
			Label: cp.String(), Perf: cr.PerfW, Energy: cr.EnergyW,
		})
		for _, g := range workload.Groups() {
			gr := cr.Groups[int(g)]
			res.Points[g.String()] = append(res.Points[g.String()], pareto.Point{
				Label: cp.String(), Perf: gr.Perf, Energy: gr.Energy,
			})
		}
	}
	for _, sel := range selectors {
		for _, p := range pareto.Frontier(res.Points[sel]) {
			res.Efficient[sel] = append(res.Efficient[sel], p.Label)
		}
	}
	return res, nil
}
