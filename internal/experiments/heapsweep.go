package experiments

import (
	"repro/internal/jvm"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HeapPoint is one heap size's steady-state behaviour for a benchmark.
type HeapPoint struct {
	HeapFactor float64
	Seconds    float64
	Watts      float64
	EnergyJ    float64
	// GCWork is the collector's share of total work at this heap size.
	GCWork float64
}

// HeapSweepSeries is one benchmark's sensitivity to heap size.
type HeapSweepSeries struct {
	Bench  string
	Points []HeapPoint // ascending heap factor
}

// HeapSweepResult is the methodology ablation behind the paper's "3x the
// minimum heap" choice (Section 2.2): a generous heap keeps collector
// work from polluting the measurement, while a tight heap would have
// measured the collector as much as the application.
type HeapSweepResult struct {
	Series []HeapSweepSeries
}

// heapFactors is the swept range, bracketing the methodology's 3x.
var heapFactors = []float64{1.5, 2, 3, 4.5, 6}

// HeapSweep measures allocation-heavy Java benchmarks on the stock i7
// across heap sizes.
func HeapSweep(c *Context) (*HeapSweepResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		return nil, err
	}
	machine, err := sim.NewMachine(p, p.Stock())
	if err != nil {
		return nil, err
	}
	res := &HeapSweepResult{}
	for _, name := range []string{"lusearch", "xalan", "pjbb2005", "compress"} {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		series := HeapSweepSeries{Bench: name}
		for _, hf := range heapFactors {
			plan, err := jvm.NewPlanHeap(b, machine.Cfg.Contexts(), hf)
			if err != nil {
				return nil, err
			}
			spec := plan.Specs[plan.MeasuredIndex()]
			r, err := machine.Run(spec, 7, nil)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, HeapPoint{
				HeapFactor: hf,
				Seconds:    r.Seconds,
				Watts:      r.AvgWatts,
				EnergyJ:    r.EnergyJ,
				GCWork:     spec.ServiceWork,
			})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}
