package experiments

import (
	"repro/internal/jvm"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// JVMRow is one virtual machine's aggregate behaviour relative to
// HotSpot over the Java workloads on the stock i7 — the Section 2.2
// cross-check ("average performance is similar to HotSpot, but
// individual benchmarks vary substantially; we observe aggregate power
// differences of up to 10% between JVMs").
type JVMRow struct {
	VM string
	// PerfVsHotSpot is mean relative performance (1 = HotSpot).
	PerfVsHotSpot float64
	// PowerVsHotSpot is mean relative average power.
	PowerVsHotSpot float64
	// MaxBenchDeviation is the largest per-benchmark performance
	// deviation from HotSpot in either direction.
	MaxBenchDeviation float64
}

// JVMComparisonResult is the Section 2.2 JVM cross-check.
type JVMComparisonResult struct {
	Rows []JVMRow
}

// JVMComparison measures every Java benchmark under the three JVMs on
// the stock i7 and aggregates relative performance and power.
func JVMComparison(c *Context) (*JVMComparisonResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		return nil, err
	}
	machine, err := sim.NewMachine(p, p.Stock())
	if err != nil {
		return nil, err
	}
	javaBenches := append(workload.ByGroup(workload.JavaNonScalable),
		workload.ByGroup(workload.JavaScalable)...)

	// Baseline: HotSpot steady-state results per benchmark.
	type pair struct{ seconds, watts float64 }
	base := make(map[string]pair, len(javaBenches))
	for _, b := range javaBenches {
		res, err := jvm.RunVM(jvm.HotSpot(), b, machine, 1)
		if err != nil {
			return nil, err
		}
		base[b.Name] = pair{res.Seconds, res.AvgWatts}
	}

	out := &JVMComparisonResult{}
	for _, vm := range jvm.VMs() {
		var perfs, watts []float64
		maxDev := 0.0
		for _, b := range javaBenches {
			res, err := jvm.RunVM(vm, b, machine, 1)
			if err != nil {
				return nil, err
			}
			bl := base[b.Name]
			rel := bl.seconds / res.Seconds
			perfs = append(perfs, rel)
			watts = append(watts, res.AvgWatts/bl.watts)
			dev := rel - 1
			if dev < 0 {
				dev = -dev
			}
			if dev > maxDev {
				maxDev = dev
			}
		}
		out.Rows = append(out.Rows, JVMRow{
			VM:                vm.Name,
			PerfVsHotSpot:     stats.Mean(perfs),
			PowerVsHotSpot:    stats.Mean(watts),
			MaxBenchDeviation: maxDev,
		})
	}
	return out, nil
}
