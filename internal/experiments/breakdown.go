package experiments

import (
	"repro/internal/jvm"
	"repro/internal/native"
	"repro/internal/power"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BreakdownRow is one benchmark's per-structure power decomposition on
// the stock i7 — the view the paper's conclusion asks hardware vendors
// to expose ("structure specific power meters for cores, caches, and
// other structures").
type BreakdownRow struct {
	Bench     string
	Group     workload.Group
	Breakdown power.Breakdown
	// Fractions of total power.
	UncoreFrac float64
	DynFrac    float64
	StaticFrac float64
	GatedFrac  float64
}

// BreakdownResult is the per-structure power view of the i7's workload.
type BreakdownResult struct {
	Rows []BreakdownRow
}

// PowerBreakdown decomposes chip power by structure for a representative
// subset of every workload group on the stock i7.
func PowerBreakdown(c *Context) (*BreakdownResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		return nil, err
	}
	machine, err := sim.NewMachine(p, p.Stock())
	if err != nil {
		return nil, err
	}
	names := []string{
		// One memory-bound and one compute-bound member per group.
		"mcf", "povray", // Native Non-scalable
		"canneal", "swaptions", // Native Scalable
		"db", "mpegaudio", // Java Non-scalable
		"lusearch", "sunflow", // Java Scalable
	}
	res := &BreakdownResult{}
	for _, name := range names {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		var r sim.Result
		if b.Managed() {
			plan, err := jvm.NewPlan(b, machine.Cfg.Contexts())
			if err != nil {
				return nil, err
			}
			r, err = machine.Run(plan.Specs[plan.MeasuredIndex()], 3, nil)
			if err != nil {
				return nil, err
			}
		} else {
			spec, err := native.Spec(b, machine.Cfg.Contexts())
			if err != nil {
				return nil, err
			}
			r, err = machine.Run(spec, 3, nil)
			if err != nil {
				return nil, err
			}
		}
		bd := r.Breakdown
		row := BreakdownRow{Bench: name, Group: b.Group, Breakdown: bd}
		if bd.TotalWatts > 0 {
			row.UncoreFrac = bd.UncoreWatts / bd.TotalWatts
			row.DynFrac = bd.CoreDynWatts / bd.TotalWatts
			row.StaticFrac = bd.CoreStaticWatts / bd.TotalWatts
			row.GatedFrac = bd.GatedWatts / bd.TotalWatts
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
