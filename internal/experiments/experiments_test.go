package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/proc"
	"repro/internal/workload"
)

var (
	once     sync.Once
	shared   *Context
	setupErr error
)

func ctx(t *testing.T) *Context {
	t.Helper()
	once.Do(func() { shared, setupErr = NewContext(42) })
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return shared
}

func TestNilContextRejected(t *testing.T) {
	var c *Context
	if err := c.check(); err == nil {
		t.Fatal("nil context accepted")
	}
	if _, err := Figure1(&Context{}); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestTable2ConfidenceIntervals(t *testing.T) {
	res, err := Table2(ctx(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs != 8 {
		t.Fatalf("default Table 2 over %d configs, want the 8 stocks", res.Configs)
	}
	if res.Table.Overall.TimeAvg <= 0 {
		t.Fatal("degenerate CI table")
	}
}

func TestTable3MatchesFleet(t *testing.T) {
	rows := Table3()
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	if rows[0].Proc.Name != proc.Pentium4Name {
		t.Fatalf("first row %s, want Pentium 4", rows[0].Proc.Name)
	}
}

func TestTable4RanksAndShape(t *testing.T) {
	rows, err := Table4(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	byName := map[string]Table4Row{}
	perfRanks := map[int]bool{}
	for _, r := range rows {
		byName[r.Result.CP.Proc.Name] = r
		if perfRanks[r.PerfRank] {
			t.Fatalf("duplicate perf rank %d", r.PerfRank)
		}
		perfRanks[r.PerfRank] = true
	}
	// Table 4's headline ordering: the i7 is the fastest processor and
	// the Atom the slowest; the Atom draws the least power.
	if byName[proc.I7Name].PerfRank != 1 {
		t.Errorf("i7 perf rank = %d, want 1", byName[proc.I7Name].PerfRank)
	}
	if byName[proc.Atom45Name].PerfRank != 8 {
		t.Errorf("Atom perf rank = %d, want 8", byName[proc.Atom45Name].PerfRank)
	}
	if byName[proc.Atom45Name].PowerRank != 8 {
		t.Errorf("Atom power rank = %d, want 8 (least power)", byName[proc.Atom45Name].PowerRank)
	}
	// The i5 is the second-fastest.
	if byName[proc.I5Name].PerfRank != 2 {
		t.Errorf("i5 perf rank = %d, want 2", byName[proc.I5Name].PerfRank)
	}
	// SPEC CPU2006 draws the least power of the four groups on the
	// Nehalems (Workload Finding 3 / Figure 2's outlier observation).
	for _, name := range []string{proc.I7Name, proc.I5Name} {
		r := byName[name].Result
		nn := r.Groups[int(workload.NativeNonScalable)].Watts
		for _, g := range []workload.Group{workload.NativeScalable, workload.JavaNonScalable, workload.JavaScalable} {
			if nn >= r.Groups[int(g)].Watts {
				t.Errorf("%s: Native Non-scalable power %v not below %s %v",
					name, nn, g, r.Groups[int(g)].Watts)
			}
		}
	}
}

func TestTable5ParetoFindings(t *testing.T) {
	res, err := Table5(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 29 {
		t.Fatalf("%d configurations, want 29", len(res.All))
	}
	// The paper's strongest Pareto finding: every efficient point for
	// Native Non-scalable is an i7 configuration (contradicting Azizi
	// et al.'s in-order prediction).
	for _, label := range res.Efficient["Native Non-scalable"] {
		if !strings.HasPrefix(label, "i7") {
			t.Errorf("non-i7 config on the Native Non-scalable frontier: %s", label)
		}
	}
	// No AtomD (45) configuration is efficient for any grouping.
	for sel, labels := range res.Efficient {
		for _, label := range labels {
			if strings.HasPrefix(label, "AtomD") {
				t.Errorf("%s frontier contains AtomD config %s", sel, label)
			}
		}
	}
	// Every frontier is non-empty.
	for _, sel := range []string{"Average", "Native Scalable", "Java Non-scalable", "Java Scalable"} {
		if len(res.Efficient[sel]) == 0 {
			t.Errorf("%s frontier empty", sel)
		}
	}
}

func TestFigure1JavaScalability(t *testing.T) {
	res, err := Figure1(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 13 {
		t.Fatalf("%d points, want 13", len(res.Points))
	}
	byName := map[string]float64{}
	for _, p := range res.Points {
		byName[p.Bench] = p.Speedup
		if p.Speedup < 1 {
			t.Errorf("%s: speedup %v below 1", p.Bench, p.Speedup)
		}
	}
	// The five Java Scalable members speed up by ~3.4x on average and
	// each beats every Java Non-scalable multithreaded benchmark except
	// near the boundary.
	scalableAvg := (byName["sunflow"] + byName["xalan"] + byName["tomcat"] +
		byName["lusearch"] + byName["eclipse"]) / 5
	if scalableAvg < 3.0 || scalableAvg > 4.0 {
		t.Errorf("Java Scalable average speedup = %v, want ~3.4", scalableAvg)
	}
	if byName["sunflow"] < 3.5 {
		t.Errorf("sunflow speedup = %v, want ~4", byName["sunflow"])
	}
	if byName["h2"] > 1.6 {
		t.Errorf("h2 speedup = %v, want poor scaling", byName["h2"])
	}
}

func TestFigure2TDPAboveMeasured(t *testing.T) {
	res, err := Figure2(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8*61 {
		t.Fatalf("%d points, want 488", len(res.Points))
	}
	spread := map[string][2]float64{} // proc -> min,max
	for _, p := range res.Points {
		// Figure 2: TDP is strictly above measured power everywhere.
		if p.Watts >= p.TDP {
			t.Errorf("%s/%s: measured %vW >= TDP %vW", p.Proc, p.Bench, p.Watts, p.TDP)
		}
		mm, ok := spread[p.Proc]
		if !ok {
			mm = [2]float64{p.Watts, p.Watts}
		}
		if p.Watts < mm[0] {
			mm[0] = p.Watts
		}
		if p.Watts > mm[1] {
			mm[1] = p.Watts
		}
		spread[p.Proc] = mm
	}
	// Even the Atom's spread is around 30%; the i7's is the widest.
	for name, mm := range spread {
		rel := (mm[1] - mm[0]) / mm[0]
		if rel < 0.2 {
			t.Errorf("%s: benchmark power spread %.0f%%, want >= 20%%", name, rel*100)
		}
	}
	i7 := spread[proc.I7Name]
	if (i7[1]-i7[0])/i7[0] < 1.0 {
		t.Errorf("i7 spread = %v, want the widest (23W..89W in the paper)", i7)
	}
}

func TestFigure3Distribution(t *testing.T) {
	res, err := Figure3(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 61 {
		t.Fatalf("%d points, want 61", len(res.Points))
	}
	// Scalable benchmarks dominate the top-right: their mean perf and
	// power exceed the non-scalable means (Section 2.7).
	var scalPerf, scalW, nonPerf, nonW float64
	var nScal, nNon int
	for _, p := range res.Points {
		if p.Group.Scalable() {
			scalPerf += p.Perf
			scalW += p.Watts
			nScal++
		} else {
			nonPerf += p.Perf
			nonW += p.Watts
			nNon++
		}
	}
	if scalPerf/float64(nScal) <= nonPerf/float64(nNon) {
		t.Error("scalable benchmarks not faster on the 8-context i7")
	}
	if scalW/float64(nScal) <= nonW/float64(nNon) {
		t.Error("scalable benchmarks not more power-hungry on the i7")
	}
}

func TestFigure4CMPContrast(t *testing.T) {
	res, err := Figure4(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) != 2 {
		t.Fatalf("%d comparisons, want i7 and i5", len(res.Ratios))
	}
	i7, i5 := res.Ratios[0], res.Ratios[1]
	// Architecture Finding 1: enabling a core is not consistently
	// energy efficient — the i7 pays more energy than the i5.
	if i7.Energy <= i5.Energy {
		t.Errorf("i7 CMP energy %v not above i5 %v", i7.Energy, i5.Energy)
	}
	for _, r := range res.Ratios {
		if r.Perf <= 1.2 || r.Perf > 1.6 {
			t.Errorf("%s: CMP perf ratio %v outside plausible range", r.Label, r.Perf)
		}
		if r.Power <= 1.1 {
			t.Errorf("%s: second core power %v too cheap", r.Label, r.Power)
		}
	}
	// Native Non-scalable gains no performance, so its energy rises on
	// both chips (the paper: +4% i5, +14% i7 power).
	for i, g := range res.Groups {
		nn := g.Energy[int(workload.NativeNonScalable)]
		if nn < 1.0 {
			t.Errorf("%s: Native Non-scalable CMP energy %v, want >= 1", res.Ratios[i].Label, nn)
		}
	}
}

func TestFigure5SMTFindings(t *testing.T) {
	res, err := Figure5(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) != 4 {
		t.Fatalf("%d comparisons, want 4", len(res.Ratios))
	}
	byLabel := map[string]int{}
	for i, r := range res.Ratios {
		byLabel[r.Label] = i
	}
	p4 := res.Ratios[byLabel[proc.Pentium4Name]]
	atom := res.Ratios[byLabel[proc.Atom45Name]]
	i5 := res.Ratios[byLabel[proc.I5Name]]
	// Architecture Finding 2: SMT delivers substantial energy savings
	// on the i5 and Atom; the Atom benefits most in performance.
	if atom.Energy >= 0.95 || i5.Energy >= 0.95 {
		t.Errorf("SMT energy: atom %v, i5 %v; want clear savings", atom.Energy, i5.Energy)
	}
	if atom.Perf <= i5.Perf {
		t.Errorf("Atom SMT perf %v not above i5 %v", atom.Perf, i5.Perf)
	}
	// The Pentium 4's first-generation SMT yields the smallest gain.
	for _, r := range res.Ratios {
		if r.Label == proc.Pentium4Name {
			continue
		}
		if p4.Perf >= r.Perf {
			t.Errorf("P4 SMT perf %v not below %s %v", p4.Perf, r.Label, r.Perf)
		}
	}
	// Workload Finding 2: Java Non-scalable suffers energy overhead
	// from SMT on the Pentium 4.
	p4JN := res.Groups[byLabel[proc.Pentium4Name]].Energy[int(workload.JavaNonScalable)]
	if p4JN <= 1.0 {
		t.Errorf("P4 Java Non-scalable SMT energy %v, want overhead (> 1)", p4JN)
	}
}

func TestFigure6JVMInducedParallelism(t *testing.T) {
	res, err := Figure6(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("%d points, want 10", len(res.Points))
	}
	sum := 0.0
	byName := map[string]float64{}
	for _, p := range res.Points {
		sum += p.Speedup
		byName[p.Bench] = p.Speedup
	}
	avg := sum / float64(len(res.Points))
	// Workload Finding 1: ~10% average speedup, up to ~50-60%.
	if avg < 1.05 || avg > 1.25 {
		t.Errorf("average single-threaded Java CMP speedup = %v, want ~1.10", avg)
	}
	if byName["antlr"] < 1.3 {
		t.Errorf("antlr speedup = %v, want the largest (~1.5)", byName["antlr"])
	}
	if byName["db"] < 1.2 {
		t.Errorf("db speedup = %v, want ~1.3 (DTLB displacement relief)", byName["db"])
	}
	if byName["mpegaudio"] > 1.1 {
		t.Errorf("mpegaudio speedup = %v, want ~1.0", byName["mpegaudio"])
	}
}

func TestFigure7ClockScaling(t *testing.T) {
	res, err := Figure7(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series, want 3", len(res.Series))
	}
	for _, s := range res.Series {
		// Performance per doubling is large but sub-linear (~+70-85%).
		if s.PerDoublingPerf < 0.5 || s.PerDoublingPerf > 1.0 {
			t.Errorf("%s: perf per doubling %v", s.Proc, s.PerDoublingPerf)
		}
		// Points are monotone in clock for perf and power.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Perf <= s.Points[i-1].Perf {
				t.Errorf("%s: perf not increasing with clock", s.Proc)
			}
			if s.Points[i].Watts <= s.Points[i-1].Watts {
				t.Errorf("%s: power not increasing with clock", s.Proc)
			}
		}
	}
	var i7, c2d, i5 Figure7Series
	for _, s := range res.Series {
		switch s.Proc {
		case proc.I7Name:
			i7 = s
		case proc.Core2D45Name:
			c2d = s
		case proc.I5Name:
			i5 = s
		}
	}
	// Architecture Finding 3: the i5's energy is nearly flat across its
	// clock range while the i7 and Core 2D pay ~50-70% more energy per
	// doubling.
	if i5.PerDoublingEnergy > 0.08 || i5.PerDoublingEnergy < -0.15 {
		t.Errorf("i5 energy per doubling = %v, want ~0", i5.PerDoublingEnergy)
	}
	if i7.PerDoublingEnergy < 0.35 {
		t.Errorf("i7 energy per doubling = %v, want large", i7.PerDoublingEnergy)
	}
	if c2d.PerDoublingEnergy < 0.3 {
		t.Errorf("C2D(45) energy per doubling = %v, want large", c2d.PerDoublingEnergy)
	}
}

func TestFigure8DieShrink(t *testing.T) {
	res, err := Figure8(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Native) != 2 || len(res.Matched) != 2 {
		t.Fatal("want two family comparisons at native and matched clocks")
	}
	// Architecture Finding 4: die shrinks cut power dramatically even
	// at matched clocks, with near-equal performance.
	for _, r := range res.Matched {
		if r.Power > 0.75 {
			t.Errorf("%s: matched-clock power ratio %v, want deep savings", r.Label, r.Power)
		}
		if r.Perf < 0.85 || r.Perf > 1.15 {
			t.Errorf("%s: matched-clock perf ratio %v, want ~1", r.Label, r.Perf)
		}
		if r.Energy > 0.8 {
			t.Errorf("%s: matched-clock energy ratio %v", r.Label, r.Energy)
		}
	}
	// Architecture Finding 5: the 45->32nm shrink repeats the 65->45nm
	// energy gains (both land in the same band).
	coreE := res.Matched[0].Energy
	nehalemE := res.Matched[1].Energy
	if nehalemE/coreE > 1.6 || coreE/nehalemE > 1.6 {
		t.Errorf("die-shrink generations diverge: Core %v vs Nehalem %v", coreE, nehalemE)
	}
	// At native clocks the newer parts are also faster.
	for _, r := range res.Native {
		if r.Perf <= 1.0 {
			t.Errorf("%s: native-clock perf ratio %v, want > 1", r.Label, r.Perf)
		}
	}
}

func TestFigure9GrossMicroarchitecture(t *testing.T) {
	res, err := Figure9(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) != 4 {
		t.Fatalf("%d comparisons, want 4", len(res.Ratios))
	}
	byLabel := map[string]Ratio{}
	for _, r := range res.Ratios {
		byLabel[r.Label] = r
	}
	// The i7 is ~2.6x the Pentium 4 at a third the power (huge energy
	// win) when matched for clock and contexts.
	nb := byLabel["NetBurst: i7/Pentium4"]
	if nb.Perf < 2.0 {
		t.Errorf("i7/P4 perf = %v, want >= 2", nb.Perf)
	}
	if nb.Power > 0.5 {
		t.Errorf("i7/P4 power = %v, want about a third", nb.Power)
	}
	if nb.Energy > 0.2 {
		t.Errorf("i7/P4 energy = %v, want ~0.13", nb.Energy)
	}
	// Architecture Finding 6: Nehalem is a modest ~15-25% faster than
	// Core at matched configuration.
	c45 := byLabel["Core: i7/C2D(45)"]
	if c45.Perf < 1.05 || c45.Perf > 1.4 {
		t.Errorf("Nehalem/Core perf = %v, want ~1.14", c45.Perf)
	}
	// Architecture Finding 7: at the same 45nm node, energy is similar.
	if c45.Energy < 0.7 || c45.Energy > 1.3 {
		t.Errorf("same-node energy ratio = %v, want ~1", c45.Energy)
	}
	// Across two nodes (i5 vs Conroe) energy halves.
	c65 := byLabel["Core: i5/C2D(65)"]
	if c65.Energy > 0.65 {
		t.Errorf("two-node energy ratio = %v, want ~0.5", c65.Energy)
	}
}

func TestFigure10TurboBoost(t *testing.T) {
	res, err := Figure10(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) != 4 {
		t.Fatalf("%d comparisons, want 4", len(res.Ratios))
	}
	byLabel := map[string]Ratio{}
	for _, r := range res.Ratios {
		byLabel[r.Label] = r
	}
	// Architecture Finding 8: Turbo Boost is not energy efficient on
	// the i7; the i5 stays near energy-neutral. Performance changes
	// track the clock-step increases (~3-10%).
	for _, r := range res.Ratios {
		if r.Perf < 1.0 || r.Perf > 1.15 {
			t.Errorf("%s: turbo perf ratio %v", r.Label, r.Perf)
		}
	}
	i7Single := byLabel["i7 (45) 1C1T"]
	if i7Single.Power < 1.25 {
		t.Errorf("i7 1C1T turbo power = %v, want the paper's big jump (~1.49)", i7Single.Power)
	}
	if i7Single.Energy < 1.1 {
		t.Errorf("i7 1C1T turbo energy = %v, want clearly inefficient", i7Single.Energy)
	}
	for _, label := range []string{"i5 (32) 2C2T", "i5 (32) 1C1T"} {
		if e := byLabel[label].Energy; e > 1.12 {
			t.Errorf("%s turbo energy = %v, want near-neutral", label, e)
		}
	}
	if byLabel["i7 (45) 4C2T"].Energy <= byLabel["i5 (32) 2C2T"].Energy {
		t.Error("i7 turbo energy overhead not above i5's")
	}
}

func TestFigure11Historical(t *testing.T) {
	res, err := Figure11(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("%d points, want 8", len(res.Points))
	}
	byName := map[string]Figure11Point{}
	for _, p := range res.Points {
		byName[p.Proc] = p
	}
	// The Atoms draw the least power; the Pentium 4 yields the most
	// performance AND power per transistor (Architecture Finding 9).
	p4 := byName[proc.Pentium4Name]
	for name, p := range byName {
		if name == proc.Pentium4Name {
			continue
		}
		if p.PerfPerMTrans >= p4.PerfPerMTrans {
			t.Errorf("%s perf/transistor %v >= P4 %v", name, p.PerfPerMTrans, p4.PerfPerMTrans)
		}
		if p.WattsPerMTrans >= p4.WattsPerMTrans {
			t.Errorf("%s power/transistor %v >= P4 %v", name, p.WattsPerMTrans, p4.WattsPerMTrans)
		}
	}
	// Power per transistor is consistent within a family: the two
	// Nehalems sit within 2x of each other, as do the three Cores.
	i7, i5 := byName[proc.I7Name], byName[proc.I5Name]
	if r := i7.WattsPerMTrans / i5.WattsPerMTrans; r > 2 || r < 0.5 {
		t.Errorf("Nehalem power/transistor inconsistent: %v", r)
	}
}

func TestFigure12Curves(t *testing.T) {
	res, err := Figure12(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []string{"Average", "Native Non-scalable", "Native Scalable", "Java Non-scalable", "Java Scalable"} {
		curve, ok := res.Curves[sel]
		if !ok {
			t.Errorf("missing curve for %s", sel)
			continue
		}
		if len(curve.Points) < 2 {
			t.Errorf("%s: frontier has %d points", sel, len(curve.Points))
		}
	}
	// Workload Finding 4: the frontiers differ by group — the scalable
	// groups reach much higher performance than the non-scalable ones.
	scal := res.Curves["Native Scalable"]
	non := res.Curves["Native Non-scalable"]
	if scal.MaxX <= non.MaxX {
		t.Errorf("scalable frontier max perf %v not beyond non-scalable %v", scal.MaxX, non.MaxX)
	}
}

func TestSection31Drilldown(t *testing.T) {
	res, err := Section31(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(res.Rows))
	}
	byName := map[string]Section31Row{}
	for _, r := range res.Rows {
		byName[r.Bench] = r
		if r.CPIOneCore <= 0 || r.CPITwoCores <= 0 {
			t.Errorf("%s: degenerate CPI", r.Bench)
		}
		if r.DTLBRatio < 1 {
			t.Errorf("%s: DTLB ratio %v below 1 — offloading must not add misses", r.Bench, r.DTLBRatio)
		}
	}
	// The paper: db spends ~95% of instructions in application code yet
	// speeds up ~30% because the collector's displacement goes away —
	// DTLB misses drop by ~2.5x with the second core.
	db := byName["db"]
	if db.DTLBRatio < 2 || db.DTLBRatio > 4 {
		t.Errorf("db DTLB ratio = %v, want ~2.5-3", db.DTLBRatio)
	}
	if db.ServiceFraction > 0.10 {
		t.Errorf("db service fraction = %v, want small (~0.05)", db.ServiceFraction)
	}
	// antlr spends the most time in the JVM (paper: up to ~50%).
	antlr := byName["antlr"]
	for name, r := range byName {
		if name == "antlr" {
			continue
		}
		if r.ServiceFraction >= antlr.ServiceFraction {
			t.Errorf("%s service fraction %v >= antlr %v", name, r.ServiceFraction, antlr.ServiceFraction)
		}
	}
	if antlr.ServiceFraction < 0.2 {
		t.Errorf("antlr service fraction = %v, want large", antlr.ServiceFraction)
	}
	// Most benchmarks spend 90-99% of instructions in the application.
	typical := 0
	for _, r := range byName {
		if r.ServiceFraction <= 0.12 {
			typical++
		}
	}
	if typical < 6 {
		t.Errorf("only %d/10 benchmarks have small service fractions", typical)
	}
}

func TestJVMComparison(t *testing.T) {
	res, err := JVMComparison(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3 JVMs", len(res.Rows))
	}
	byName := map[string]JVMRow{}
	for _, r := range res.Rows {
		byName[r.VM] = r
	}
	hs := byName["HotSpot"]
	if hs.PerfVsHotSpot != 1 || hs.PowerVsHotSpot != 1 || hs.MaxBenchDeviation != 0 {
		t.Fatalf("HotSpot not its own baseline: %+v", hs)
	}
	for _, name := range []string{"JRockit", "J9"} {
		r := byName[name]
		// Section 2.2: average performance similar to HotSpot...
		if r.PerfVsHotSpot < 0.92 || r.PerfVsHotSpot > 1.08 {
			t.Errorf("%s aggregate perf = %v, want within ~8%% of HotSpot", name, r.PerfVsHotSpot)
		}
		// ...aggregate power differences of up to 10%...
		if r.PowerVsHotSpot < 0.88 || r.PowerVsHotSpot > 1.12 {
			t.Errorf("%s aggregate power = %v, want within ~10%%", name, r.PowerVsHotSpot)
		}
		// ...but individual benchmarks vary substantially.
		if r.MaxBenchDeviation < 0.05 {
			t.Errorf("%s max benchmark deviation = %v, want substantial", name, r.MaxBenchDeviation)
		}
	}
	// The two alternative VMs sit on opposite sides of HotSpot in power.
	if (byName["JRockit"].PowerVsHotSpot-1)*(byName["J9"].PowerVsHotSpot-1) >= 0 {
		t.Error("JRockit and J9 power biases do not bracket HotSpot")
	}
}

func TestMeterComparison(t *testing.T) {
	res, err := MeterComparison(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.WallWatts <= r.ChipWatts {
			t.Errorf("%s: wall %v not above chip %v", r.Proc, r.WallWatts, r.ChipWatts)
		}
		if r.ChipFraction <= 0 || r.ChipFraction >= 1 {
			t.Errorf("%s: chip fraction %v", r.Proc, r.ChipFraction)
		}
		// The methodological point: benchmark sensitivity is diluted at
		// the wall — chip spread always exceeds wall spread.
		if r.WallSpread >= r.ChipSpread {
			t.Errorf("%s: wall spread %v not below chip spread %v",
				r.Proc, r.WallSpread, r.ChipSpread)
		}
	}
	// The Atoms vanish into the system floor.
	for _, r := range res.Rows {
		if r.Proc == proc.Atom45Name && r.ChipFraction > 0.08 {
			t.Errorf("Atom chip fraction %v, want tiny", r.ChipFraction)
		}
	}
}

func TestKernelBugAblation(t *testing.T) {
	res, err := KernelBug(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Every multicore fleet member (6 of 8; the Pentium 4 and Atom 230 are single-core).
	if len(res.Reports) != 6 {
		t.Fatalf("%d reports, want 6 multicore parts", len(res.Reports))
	}
	for _, r := range res.Reports {
		if !r.Anomalous() {
			t.Errorf("%s: no power anomaly under buggy OS offlining", r.Proc)
		}
	}
}

func TestHeapSweep(t *testing.T) {
	res, err := HeapSweep(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("%d series, want 4", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 5 {
			t.Fatalf("%s: %d points, want 5", s.Bench, len(s.Points))
		}
		// GC work falls monotonically as the heap grows.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].GCWork > s.Points[i-1].GCWork {
				t.Errorf("%s: GC work rose with heap size", s.Bench)
			}
		}
	}
	// The allocation-heavy benchmark pays heavily for a tight heap; the
	// low-allocation one barely notices — and at the methodology's 3x
	// the sensitivity has flattened out (the paper's rationale).
	byName := map[string]HeapSweepSeries{}
	for _, s := range res.Series {
		byName[s.Bench] = s
	}
	slowdown := func(s HeapSweepSeries) float64 {
		return s.Points[0].Seconds / s.Points[len(s.Points)-1].Seconds
	}
	if slowdown(byName["lusearch"]) < 1.05 {
		t.Errorf("lusearch tight-heap slowdown = %v, want significant", slowdown(byName["lusearch"]))
	}
	if slowdown(byName["compress"]) > 1.03 {
		t.Errorf("compress tight-heap slowdown = %v, want negligible", slowdown(byName["compress"]))
	}
	lu := byName["lusearch"].Points
	tightStep := lu[0].Seconds / lu[1].Seconds // 1.5x -> 2x
	threeStep := lu[2].Seconds / lu[3].Seconds // 3x -> 4.5x
	if threeStep >= tightStep {
		t.Errorf("heap sensitivity not flattening: 1.5->2 gain %v vs 3->4.5 gain %v",
			tightStep, threeStep)
	}
}

func TestScalingAnalysis(t *testing.T) {
	res, err := ScalingAnalysis(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want Core and Nehalem shrinks", len(res.Rows))
	}
	for _, r := range res.Rows {
		m := r.Measured
		// Both measured shrinks raise frequency and cut power.
		if m.Frequency <= 1 {
			t.Errorf("%s: frequency ratio %v", m.Label, m.Frequency)
		}
		if m.Power >= 1 {
			t.Errorf("%s: power ratio %v", m.Label, m.Power)
		}
		// The decade's reality: both land far from Dennard-ideal
		// frequency scaling but beat the conservative ITRS numbers
		// (Architecture Finding 5's "more encouraging" observation).
		if r.VsDennard.FreqError > 0.95 {
			t.Errorf("%s: frequency at %v of Dennard — too good to be true",
				m.Label, r.VsDennard.FreqError)
		}
		if r.VsITRS.FreqError < 1.0 {
			t.Errorf("%s: frequency below the ITRS prediction (%v)",
				m.Label, r.VsITRS.FreqError)
		}
	}
	// Architecture Finding 5: the two generations deliver similar energy
	// reductions — their power ratios sit within ~30% of each other.
	p0, p1 := res.Rows[0].Measured.Power, res.Rows[1].Measured.Power
	if p0/p1 > 1.3 || p1/p0 > 1.3 {
		t.Errorf("generations diverge: %v vs %v", p0, p1)
	}
	// Section 4.1's projection: the shrunk P4 cuts power several-fold
	// (the paper says ~4x using its matched-clock factors; our native-
	// clock factors land nearer 2-3x) and gains well over 1.5x
	// performance.
	if res.P4Projected.Power > 0.55 || res.P4Projected.Power < 0.15 {
		t.Errorf("P4 projected power = %v, want ~four-fold reduction", res.P4Projected.Power)
	}
	if res.P4Projected.Perf < 1.5 {
		t.Errorf("P4 projected perf = %v, want ~two-fold gain", res.P4Projected.Perf)
	}
}

func TestPowerBreakdown(t *testing.T) {
	res, err := PowerBreakdown(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(res.Rows))
	}
	byName := map[string]BreakdownRow{}
	for _, r := range res.Rows {
		byName[r.Bench] = r
		sum := r.UncoreFrac + r.DynFrac + r.StaticFrac + r.GatedFrac
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %v", r.Bench, sum)
		}
		if r.Breakdown.TotalWatts <= 0 {
			t.Errorf("%s: degenerate breakdown", r.Bench)
		}
	}
	// Single-threaded benchmarks leave most cores idle: their gated
	// share is visible while the scalable ones drive dynamic power.
	if byName["povray"].DynFrac >= byName["swaptions"].DynFrac {
		t.Error("single-threaded dynamic share not below fully-loaded")
	}
	if byName["swaptions"].GatedFrac >= byName["povray"].GatedFrac {
		t.Error("fully-loaded gated share not below single-threaded")
	}
	// Memory-bound mcf burns relatively less core dynamic power than
	// compute-bound povray at the same thread count.
	if byName["mcf"].Breakdown.CoreDynWatts >= byName["povray"].Breakdown.CoreDynWatts {
		t.Error("memory-bound dynamic power not below compute-bound")
	}
}

func TestFindingsAllHold(t *testing.T) {
	res, err := Findings(ctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 13 {
		t.Fatalf("%d findings, want the paper's 13", len(res.Findings))
	}
	for _, f := range res.Findings {
		if !f.Holds {
			t.Errorf("%s does not hold: %s (%s)", f.ID, f.Statement, f.Detail)
		}
		if f.Detail == "" {
			t.Errorf("%s: missing detail", f.ID)
		}
	}
	if !res.AllHold() {
		t.Error("AllHold inconsistent with per-finding state")
	}
}
