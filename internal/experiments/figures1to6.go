package experiments

import (
	"repro/internal/proc"
	"repro/internal/workload"
)

// ScalabilityPoint is one benchmark's speedup between two configurations.
type ScalabilityPoint struct {
	Bench   string
	Speedup float64
}

// Figure1Result reproduces Figure 1: scalability of the multithreaded
// Java benchmarks on the i7 (45), 4C2T over 1C1T.
type Figure1Result struct {
	Points []ScalabilityPoint // in the figure's order
}

// Figure1 regenerates Figure 1.
func Figure1(c *Context) (*Figure1Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	full, err := config(proc.I7Name, 4, 2, 2.67, false)
	if err != nil {
		return nil, err
	}
	single, err := config(proc.I7Name, 1, 1, 2.67, false)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{}
	for _, b := range workload.MultithreadedJava() {
		mf, err := c.H.Measure(b, full)
		if err != nil {
			return nil, err
		}
		ms, err := c.H.Measure(b, single)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ScalabilityPoint{
			Bench:   b.Name,
			Speedup: ms.Seconds / mf.Seconds,
		})
	}
	return res, nil
}

// PowerTDPPoint is one benchmark's measured power on one processor
// against that processor's TDP.
type PowerTDPPoint struct {
	Proc  string
	Bench string
	TDP   float64
	Watts float64
}

// Figure2Result reproduces Figure 2: measured benchmark power versus TDP
// for every stock processor.
type Figure2Result struct {
	Points []PowerTDPPoint
}

// Figure2 regenerates Figure 2.
func Figure2(c *Context) (*Figure2Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res := &Figure2Result{}
	for _, cp := range proc.StockConfigs() {
		for _, b := range workload.All() {
			m, err := c.H.Measure(b, cp)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, PowerTDPPoint{
				Proc:  cp.Proc.Name,
				Bench: b.Name,
				TDP:   cp.Proc.Spec.TDPWatts,
				Watts: m.Watts,
			})
		}
	}
	return res, nil
}

// PerfPowerPoint is one benchmark's normalized performance and power.
type PerfPowerPoint struct {
	Bench string
	Group workload.Group
	Perf  float64
	Watts float64
}

// Figure3Result reproduces Figure 3: the power/performance distribution
// of all 61 benchmarks on the stock i7 (45).
type Figure3Result struct {
	Points []PerfPowerPoint
}

// Figure3 regenerates Figure 3.
func Figure3(c *Context) (*Figure3Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	cp, err := stock(proc.I7Name)
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{}
	for _, b := range workload.All() {
		m, err := c.H.Measure(b, cp)
		if err != nil {
			return nil, err
		}
		n, err := c.Ref.Normalize(m)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, PerfPowerPoint{
			Bench: b.Name, Group: b.Group, Perf: n.Perf, Watts: n.Watts,
		})
	}
	return res, nil
}

// FeatureResult is the common shape of the feature-analysis figures:
// average ratios per comparison plus per-group energy breakdowns.
type FeatureResult struct {
	Ratios []Ratio
	Groups []GroupEnergy
}

// Figure4 regenerates Figure 4: the effect of enabling a second core
// (two cores over one, SMT and Turbo Boost disabled) on the i7 (45) and
// i5 (32).
func Figure4(c *Context) (*FeatureResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res := &FeatureResult{}
	cases := []struct {
		name  string
		clock float64
	}{
		{proc.I7Name, 2.67},
		{proc.I5Name, 3.46},
	}
	for _, cs := range cases {
		two, err := config(cs.name, 2, 1, cs.clock, false)
		if err != nil {
			return nil, err
		}
		one, err := config(cs.name, 1, 1, cs.clock, false)
		if err != nil {
			return nil, err
		}
		r, g, err := c.compare(cs.name, two, one)
		if err != nil {
			return nil, err
		}
		res.Ratios = append(res.Ratios, r)
		res.Groups = append(res.Groups, g)
	}
	return res, nil
}

// Figure5 regenerates Figure 5: two-way SMT on a single core (1C2T over
// 1C1T) for the four SMT-capable processors, Turbo Boost disabled.
func Figure5(c *Context) (*FeatureResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res := &FeatureResult{}
	cases := []struct {
		name  string
		clock float64
	}{
		{proc.Pentium4Name, 2.4},
		{proc.I7Name, 2.67},
		{proc.Atom45Name, 1.7},
		{proc.I5Name, 3.46},
	}
	for _, cs := range cases {
		smt, err := config(cs.name, 1, 2, cs.clock, false)
		if err != nil {
			return nil, err
		}
		single, err := config(cs.name, 1, 1, cs.clock, false)
		if err != nil {
			return nil, err
		}
		r, g, err := c.compare(cs.name, smt, single)
		if err != nil {
			return nil, err
		}
		res.Ratios = append(res.Ratios, r)
		res.Groups = append(res.Groups, g)
	}
	return res, nil
}

// Figure6Result reproduces Figure 6: the CMP effect on single-threaded
// Java (2C1T over 1C1T on the i7, SMT off) — the JVM-induced parallelism
// of Workload Finding 1.
type Figure6Result struct {
	Points []ScalabilityPoint
}

// Figure6 regenerates Figure 6.
func Figure6(c *Context) (*Figure6Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	two, err := config(proc.I7Name, 2, 1, 2.67, false)
	if err != nil {
		return nil, err
	}
	one, err := config(proc.I7Name, 1, 1, 2.67, false)
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{}
	for _, b := range workload.SingleThreadedJava() {
		m2, err := c.H.Measure(b, two)
		if err != nil {
			return nil, err
		}
		m1, err := c.H.Measure(b, one)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ScalabilityPoint{
			Bench:   b.Name,
			Speedup: m1.Seconds / m2.Seconds,
		})
	}
	return res, nil
}
