package experiments

import (
	"repro/internal/proc"
	"repro/internal/scaling"
)

// ScalingRow compares one measured die shrink with the scaling
// frameworks' predictions over the same nodes.
type ScalingRow struct {
	Measured scaling.Transition
	// VsDennard, VsPostDennard, and VsITRS are measured/predicted
	// multiplicative errors (1.0 = the framework nailed it).
	VsDennard     scaling.Compare
	VsPostDennard scaling.Compare
	VsITRS        scaling.Compare
}

// ScalingResult is the technology-scaling analysis behind Architecture
// Findings 4 and 5 and the Section 4.1 Pentium 4 projection.
type ScalingResult struct {
	Rows []ScalingRow
	// P4Projected is the Section 4.1 thought experiment: the Pentium 4
	// design shrunk from 130 nm to 32 nm under the measured per-
	// generation scaling ("reduce power four fold and increase
	// performance two fold").
	P4Projected scaling.Transition
}

// ScalingAnalysis measures both family die shrinks at stock clocks and
// compares them with Dennard, post-Dennard, and ITRS scaling.
func ScalingAnalysis(c *Context) (*ScalingResult, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	type pair struct {
		label    string
		oldName  string
		newName  string
		from, to scaling.Node
		oldCP    func() (proc.ConfiguredProcessor, error)
		newCP    func() (proc.ConfiguredProcessor, error)
	}
	pairs := []pair{
		{
			label: "Core 65->45nm", from: scaling.N65, to: scaling.N45,
			oldCP: func() (proc.ConfiguredProcessor, error) { return stock(proc.Core2D65Name) },
			newCP: func() (proc.ConfiguredProcessor, error) { return stock(proc.Core2D45Name) },
		},
		{
			label: "Nehalem 45->32nm", from: scaling.N45, to: scaling.N32,
			// The i7 limited to the i5's 2C2T, per Figure 8.
			oldCP: func() (proc.ConfiguredProcessor, error) {
				return config(proc.I7Name, 2, 2, 2.67, true)
			},
			newCP: func() (proc.ConfiguredProcessor, error) { return stock(proc.I5Name) },
		},
	}
	res := &ScalingResult{}
	var measuredPower, measuredFreq []float64
	for _, pr := range pairs {
		oldCP, err := pr.oldCP()
		if err != nil {
			return nil, err
		}
		newCP, err := pr.newCP()
		if err != nil {
			return nil, err
		}
		oldR, err := c.H.MeasureConfig(oldCP, c.Ref, nil)
		if err != nil {
			return nil, err
		}
		newR, err := c.H.MeasureConfig(newCP, c.Ref, nil)
		if err != nil {
			return nil, err
		}
		m := scaling.Transition{
			Label:     pr.label,
			From:      pr.from,
			To:        pr.to,
			Frequency: newCP.Config.ClockGHz / oldCP.Config.ClockGHz,
			Power:     newR.WattsW / oldR.WattsW,
			Perf:      newR.PerfW / oldR.PerfW,
		}
		row := ScalingRow{Measured: m}
		for _, fw := range []struct {
			f     scaling.Factors
			label string
			dst   *scaling.Compare
		}{
			{scaling.Dennard(), "Dennard", &row.VsDennard},
			{scaling.PostDennard(), "post-Dennard", &row.VsPostDennard},
			{scaling.ITRS4532(), "ITRS", &row.VsITRS},
		} {
			pred, err := scaling.Project(fw.label, fw.f, pr.from, pr.to)
			if err != nil {
				return nil, err
			}
			cmp, err := m.Against(pred)
			if err != nil {
				return nil, err
			}
			*fw.dst = cmp
		}
		res.Rows = append(res.Rows, row)
		measuredPower = append(measuredPower, m.Power)
		measuredFreq = append(measuredFreq, m.Frequency)
	}

	// Section 4.1: apply the measured per-generation scaling (the mean
	// of the two observed shrinks, at matched complexity) to the
	// Pentium 4 across the four generations from 130 nm to 32 nm.
	perGen := scaling.Factors{
		Frequency: (measuredFreq[0] + measuredFreq[1]) / 2,
		Power:     (measuredPower[0] + measuredPower[1]) / 2,
		Area:      0.5,
	}
	p4, err := scaling.Project("P4 @ 32nm (projected)", perGen, scaling.N130, scaling.N32)
	if err != nil {
		return nil, err
	}
	res.P4Projected = p4
	return res, nil
}
