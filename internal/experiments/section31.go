package experiments

import (
	"fmt"

	"repro/internal/proc"
	"repro/internal/workload"
)

// Section31Row is one single-threaded Java benchmark's counter-level
// drill-down into the JVM-induced parallelism of Workload Finding 1:
// what changes between one core and two, and why.
type Section31Row struct {
	Bench string
	// Speedup is the 2C1T over 1C1T execution-time ratio (Figure 6).
	Speedup float64
	// ServiceFraction is the share of retired instructions executed by
	// the runtime's service threads (the paper instruments HotSpot to
	// obtain this; antlr reaches ~0.5, most benchmarks 0.01-0.1).
	ServiceFraction float64
	// DTLBRatio is DTLB misses-per-kilo-instruction at one core over
	// two cores: db's is ~2.5x in the paper, because the co-resident
	// collector displaces the application's translation state.
	DTLBRatio float64
	// CPIOneCore and CPITwoCores show the cycle-level effect.
	CPIOneCore  float64
	CPITwoCores float64
}

// Section31Result is the counter drill-down behind Figure 6.
type Section31Result struct {
	Rows []Section31Row
}

// Section31 reproduces the Section 3.1 analysis: it measures the
// single-threaded Java benchmarks on the i7 at one and two cores (SMT
// and Turbo off) and reads the hardware counters alongside.
func Section31(c *Context) (*Section31Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	two, err := config(proc.I7Name, 2, 1, 2.67, false)
	if err != nil {
		return nil, err
	}
	one, err := config(proc.I7Name, 1, 1, 2.67, false)
	if err != nil {
		return nil, err
	}
	res := &Section31Result{}
	for _, b := range workload.SingleThreadedJava() {
		m1, err := c.H.Measure(b, one)
		if err != nil {
			return nil, err
		}
		m2, err := c.H.Measure(b, two)
		if err != nil {
			return nil, err
		}
		d2 := m2.Counters.DTLBMPKI()
		if d2 == 0 {
			return nil, fmt.Errorf("experiments: %s: zero DTLB rate", b.Name)
		}
		res.Rows = append(res.Rows, Section31Row{
			Bench:           b.Name,
			Speedup:         m1.Seconds / m2.Seconds,
			ServiceFraction: m2.Counters.ServiceFraction(),
			DTLBRatio:       m1.Counters.DTLBMPKI() / d2,
			CPIOneCore:      m1.Counters.CPI(),
			CPITwoCores:     m2.Counters.CPI(),
		})
	}
	return res, nil
}
