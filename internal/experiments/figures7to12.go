package experiments

import (
	"math"

	"repro/internal/pareto"
	"repro/internal/proc"
	"repro/internal/workload"
)

// ClockPoint is one DVFS operating point's measured aggregate.
type ClockPoint struct {
	ClockGHz float64
	Perf     float64
	Watts    float64
	Energy   float64
	// PerGroup carries the per-group absolute power and performance for
	// Figure 7(d).
	PerGroup [4]struct{ Perf, Watts float64 }
}

// Figure7Series is one processor's clock-scaling sweep.
type Figure7Series struct {
	Proc   string
	Points []ClockPoint // ascending clock

	// PerDoubling expresses the percentage change in performance,
	// power, and energy per doubling of clock frequency over the swept
	// range, the normalization Figure 7(a) uses.
	PerDoublingPerf   float64
	PerDoublingPower  float64
	PerDoublingEnergy float64

	// GroupEnergyPerDoubling is Figure 7(b)'s per-group breakdown.
	GroupEnergyPerDoubling [4]float64
}

// Figure7Result reproduces Figure 7: clock scaling on the i7 (45),
// Core 2D (45), and i5 (32), Turbo Boost disabled.
type Figure7Result struct {
	Series []Figure7Series
}

// figure7Clocks are the DVFS points swept per processor.
var figure7Clocks = map[string][]float64{
	proc.I7Name:       {1.60, 2.13, 2.40, 2.67},
	proc.Core2D45Name: {1.6, 2.4, 3.1},
	proc.I5Name:       {1.20, 2.00, 2.66, 3.46},
}

// Figure7 regenerates Figure 7.
func Figure7(c *Context) (*Figure7Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res := &Figure7Result{}
	for _, name := range []string{proc.I7Name, proc.Core2D45Name, proc.I5Name} {
		p, err := proc.ByName(name)
		if err != nil {
			return nil, err
		}
		series := Figure7Series{Proc: name}
		for _, ghz := range figure7Clocks[name] {
			cp := proc.ConfiguredProcessor{Proc: p, Config: proc.Config{
				Cores: p.Spec.Cores, SMTWays: p.Spec.SMTWays, ClockGHz: ghz,
			}}
			cr, err := c.H.MeasureConfig(cp, c.Ref, nil)
			if err != nil {
				return nil, err
			}
			pt := ClockPoint{ClockGHz: ghz, Perf: cr.PerfW, Watts: cr.WattsW, Energy: cr.EnergyW}
			for _, g := range workload.Groups() {
				gr := cr.Groups[int(g)]
				pt.PerGroup[int(g)] = struct{ Perf, Watts float64 }{gr.Perf, gr.Watts}
			}
			series.Points = append(series.Points, pt)
		}
		lo, hi := series.Points[0], series.Points[len(series.Points)-1]
		doublings := math.Log2(hi.ClockGHz / lo.ClockGHz)
		perDoubling := func(hiV, loV float64) float64 {
			return math.Pow(hiV/loV, 1/doublings) - 1
		}
		series.PerDoublingPerf = perDoubling(hi.Perf, lo.Perf)
		series.PerDoublingPower = perDoubling(hi.Watts, lo.Watts)
		series.PerDoublingEnergy = perDoubling(hi.Energy, lo.Energy)
		for g := range series.GroupEnergyPerDoubling {
			hiE := hi.PerGroup[g].Watts / hi.PerGroup[g].Perf
			loE := lo.PerGroup[g].Watts / lo.PerGroup[g].Perf
			series.GroupEnergyPerDoubling[g] = perDoubling(hiE, loE)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Figure8Result reproduces Figure 8: the die-shrink comparisons within
// the Core (65nm -> 45nm) and Nehalem (45nm -> 32nm) families, at native
// and matched clocks, plus the matched-clock per-group energy breakdown.
type Figure8Result struct {
	Native  []Ratio       // new/old at native clocks
	Matched []Ratio       // new/old at matched clocks
	Groups  []GroupEnergy // matched-clock energy per group
}

// Figure8 regenerates Figure 8. The i7 is limited to two cores to match
// the i5, and the matched clocks are 2.4 GHz (Core) and 2.66 GHz
// (Nehalem), per Section 3.4.
func Figure8(c *Context) (*Figure8Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res := &Figure8Result{}

	// Core family: Wolfdale over Conroe.
	oldCore, err := stock(proc.Core2D65Name)
	if err != nil {
		return nil, err
	}
	newCoreNative, err := stock(proc.Core2D45Name)
	if err != nil {
		return nil, err
	}
	r, _, err := c.compare("Core", newCoreNative, oldCore)
	if err != nil {
		return nil, err
	}
	res.Native = append(res.Native, r)

	newCoreMatched, err := config(proc.Core2D45Name, 2, 1, 2.4, false)
	if err != nil {
		return nil, err
	}
	r, g, err := c.compare("Core 2.4GHz", newCoreMatched, oldCore)
	if err != nil {
		return nil, err
	}
	res.Matched = append(res.Matched, r)
	res.Groups = append(res.Groups, g)

	// Nehalem family: Clarkdale over Bloomfield limited to 2C2T.
	oldNehalemNative, err := config(proc.I7Name, 2, 2, 2.67, true)
	if err != nil {
		return nil, err
	}
	newNehalemNative, err := stock(proc.I5Name)
	if err != nil {
		return nil, err
	}
	r, _, err = c.compare("Nehalem 2C2T", newNehalemNative, oldNehalemNative)
	if err != nil {
		return nil, err
	}
	res.Native = append(res.Native, r)

	oldNehalemMatched, err := config(proc.I7Name, 2, 2, 2.67, false)
	if err != nil {
		return nil, err
	}
	newNehalemMatched, err := config(proc.I5Name, 2, 2, 2.66, false)
	if err != nil {
		return nil, err
	}
	r, g, err = c.compare("Nehalem 2C2T 2.6GHz", newNehalemMatched, oldNehalemMatched)
	if err != nil {
		return nil, err
	}
	res.Matched = append(res.Matched, r)
	res.Groups = append(res.Groups, g)
	return res, nil
}

// Figure9Result reproduces Figure 9: gross microarchitecture changes,
// comparing Nehalem parts against the other three microarchitectures at
// matched clock speed, core count, and hardware threads.
type Figure9Result struct {
	Ratios []Ratio
	Groups []GroupEnergy
}

// Figure9 regenerates Figure 9.
func Figure9(c *Context) (*Figure9Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	type cmp struct {
		label        string
		nName        string
		nCores, nSMT int
		nClock       float64
		oName        string
		oCores, oSMT int
		oClock       float64
	}
	cases := []cmp{
		// Bonnell: i7 matched to the Atom D510's 2C2T at ~1.7GHz.
		{"Bonnell: i7/AtomD", proc.I7Name, 2, 2, 1.7, proc.AtomD45Name, 2, 2, 1.7},
		// NetBurst: i7 matched to the Pentium 4's 1C2T at 2.4GHz.
		{"NetBurst: i7/Pentium4", proc.I7Name, 1, 2, 2.4, proc.Pentium4Name, 1, 2, 2.4},
		// Core at 45nm: i7 matched to the Wolfdale's 2C1T; clocks within
		// a step (2.67 vs 2.4 is the nearest shared DVFS point at 2.4).
		{"Core: i7/C2D(45)", proc.I7Name, 2, 1, 2.4, proc.Core2D45Name, 2, 1, 2.4},
		// Core across nodes: i5 matched to the Conroe's 2C1T at 2.4GHz.
		{"Core: i5/C2D(65)", proc.I5Name, 2, 1, 2.4, proc.Core2D65Name, 2, 1, 2.4},
	}
	res := &Figure9Result{}
	for _, cs := range cases {
		num, err := config(cs.nName, cs.nCores, cs.nSMT, cs.nClock, false)
		if err != nil {
			return nil, err
		}
		den, err := config(cs.oName, cs.oCores, cs.oSMT, cs.oClock, false)
		if err != nil {
			return nil, err
		}
		r, g, err := c.compare(cs.label, num, den)
		if err != nil {
			return nil, err
		}
		res.Ratios = append(res.Ratios, r)
		res.Groups = append(res.Groups, g)
	}
	return res, nil
}

// Figure10Result reproduces Figure 10: Turbo Boost enabled over disabled
// on the i7 (45) and i5 (32), in stock and single-context configurations.
type Figure10Result struct {
	Ratios []Ratio
	Groups []GroupEnergy
}

// Figure10 regenerates Figure 10.
func Figure10(c *Context) (*Figure10Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	type cmp struct {
		label      string
		name       string
		cores, smt int
		clock      float64
	}
	cases := []cmp{
		{"i7 (45) 4C2T", proc.I7Name, 4, 2, 2.67},
		{"i7 (45) 1C1T", proc.I7Name, 1, 1, 2.67},
		{"i5 (32) 2C2T", proc.I5Name, 2, 2, 3.46},
		{"i5 (32) 1C1T", proc.I5Name, 1, 1, 3.46},
	}
	res := &Figure10Result{}
	for _, cs := range cases {
		on, err := config(cs.name, cs.cores, cs.smt, cs.clock, true)
		if err != nil {
			return nil, err
		}
		off, err := config(cs.name, cs.cores, cs.smt, cs.clock, false)
		if err != nil {
			return nil, err
		}
		r, g, err := c.compare(cs.label, on, off)
		if err != nil {
			return nil, err
		}
		res.Ratios = append(res.Ratios, r)
		res.Groups = append(res.Groups, g)
	}
	return res, nil
}

// Figure11Point is one stock processor's position in the historical
// overview.
type Figure11Point struct {
	Proc  string
	Perf  float64
	Watts float64
	// Per-transistor views for Figure 11(b).
	PerfPerMTrans  float64
	WattsPerMTrans float64
}

// Figure11Result reproduces Figure 11: the historical power/performance
// overview and the per-transistor analysis.
type Figure11Result struct {
	Points []Figure11Point
}

// Figure11 regenerates Figure 11.
func Figure11(c *Context) (*Figure11Result, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	res := &Figure11Result{}
	for _, cp := range proc.StockConfigs() {
		cr, err := c.H.MeasureConfig(cp, c.Ref, nil)
		if err != nil {
			return nil, err
		}
		trans := cp.Proc.Spec.TransistorsM
		res.Points = append(res.Points, Figure11Point{
			Proc:           cp.Proc.Name,
			Perf:           cr.PerfW,
			Watts:          cr.WattsW,
			PerfPerMTrans:  cr.PerfW / trans,
			WattsPerMTrans: cr.WattsW / trans,
		})
	}
	return res, nil
}

// Figure12Result reproduces Figure 12: the energy/performance Pareto
// frontiers at 45nm, one fitted curve per workload group plus the
// average.
type Figure12Result struct {
	// Curves maps "Average" and each group name to its fitted frontier.
	Curves map[string]*pareto.Curve
	Table  *Table5Result
}

// Figure12 regenerates Figure 12 from the Table 5 analysis.
func Figure12(c *Context) (*Figure12Result, error) {
	t5, err := Table5(c)
	if err != nil {
		return nil, err
	}
	res := &Figure12Result{Curves: make(map[string]*pareto.Curve), Table: t5}
	for sel, pts := range t5.Points {
		curve, err := pareto.FitCurve(pts, 2)
		if err != nil {
			// A frontier with very few points falls back to degree 1.
			curve, err = pareto.FitCurve(pts, 1)
			if err != nil {
				return nil, err
			}
		}
		res.Curves[sel] = curve
	}
	return res, nil
}
