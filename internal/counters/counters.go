// Package counters models the hardware event counters the paper couples
// with its power measurements. Section 3.1 instruments the JVM and reads
// performance counters to explain the single-threaded Java speedups:
// antlr spends up to 50% of its time in the JVM while most benchmarks
// spend 90-99% in the application thread, and db's second-core speedup
// traces to a 2.5x drop in DTLB misses once the collector stops
// displacing the application's address-translation state.
//
// The paper's closing recommendation is to pair exactly such counters
// with on-chip power meters; this package is the counter half of that
// pairing for the simulated fleet.
package counters

import (
	"errors"
	"fmt"
)

// Counters accumulates one run's architectural events.
type Counters struct {
	// Cycles is total core cycles consumed across all active contexts.
	Cycles float64
	// Instructions is total instructions retired (application plus
	// runtime services).
	Instructions float64
	// AppInstructions is the application's share of Instructions.
	AppInstructions float64
	// ServiceInstructions is the managed runtime's share (JIT, GC,
	// profiler); zero for native code.
	ServiceInstructions float64
	// LLCMisses counts last-level cache misses to DRAM.
	LLCMisses float64
	// DTLBMisses counts data-TLB misses.
	DTLBMisses float64
	// BranchInstructions counts retired branches (approximated from the
	// workload's branch weight).
	BranchInstructions float64
}

// Add accumulates another interval's events.
func (c *Counters) Add(other Counters) {
	c.Cycles += other.Cycles
	c.Instructions += other.Instructions
	c.AppInstructions += other.AppInstructions
	c.ServiceInstructions += other.ServiceInstructions
	c.LLCMisses += other.LLCMisses
	c.DTLBMisses += other.DTLBMisses
	c.BranchInstructions += other.BranchInstructions
}

// Scale multiplies every event count by k (averaging across runs).
func (c *Counters) Scale(k float64) {
	c.Cycles *= k
	c.Instructions *= k
	c.AppInstructions *= k
	c.ServiceInstructions *= k
	c.LLCMisses *= k
	c.DTLBMisses *= k
	c.BranchInstructions *= k
}

// Validate checks internal consistency.
func (c Counters) Validate() error {
	switch {
	case c.Cycles < 0 || c.Instructions < 0 || c.LLCMisses < 0 || c.DTLBMisses < 0:
		return errors.New("counters: negative event count")
	case c.AppInstructions+c.ServiceInstructions > c.Instructions*(1+1e-9):
		return fmt.Errorf("counters: app (%g) + service (%g) exceed total (%g)",
			c.AppInstructions, c.ServiceInstructions, c.Instructions)
	}
	return nil
}

// CPI returns cycles per retired instruction.
func (c Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return c.Cycles / c.Instructions
}

// LLCMPKI returns last-level cache misses per kilo-instruction.
func (c Counters) LLCMPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return c.LLCMisses / c.Instructions * 1000
}

// DTLBMPKI returns data-TLB misses per kilo-instruction.
func (c Counters) DTLBMPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return c.DTLBMisses / c.Instructions * 1000
}

// ServiceFraction returns the fraction of retired instructions executed
// by the managed runtime's service threads — the quantity the paper
// obtained by instrumenting HotSpot (antlr: up to ~0.5 of time; typical
// benchmarks: 0.01-0.1).
func (c Counters) ServiceFraction() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return c.ServiceInstructions / c.Instructions
}
