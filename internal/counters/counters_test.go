package counters

import (
	"math"
	"testing"
	"testing/quick"
)

func sample() Counters {
	return Counters{
		Cycles:              2e9,
		Instructions:        1e9,
		AppInstructions:     9e8,
		ServiceInstructions: 1e8,
		LLCMisses:           2e6,
		DTLBMisses:          5e5,
		BranchInstructions:  1.5e8,
	}
}

func TestDerivedRates(t *testing.T) {
	c := sample()
	if got := c.CPI(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("CPI = %v, want 2", got)
	}
	if got := c.LLCMPKI(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("LLCMPKI = %v, want 2", got)
	}
	if got := c.DTLBMPKI(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("DTLBMPKI = %v, want 0.5", got)
	}
	if got := c.ServiceFraction(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("ServiceFraction = %v, want 0.1", got)
	}
}

func TestZeroInstructionsSafe(t *testing.T) {
	var c Counters
	if c.CPI() != 0 || c.LLCMPKI() != 0 || c.DTLBMPKI() != 0 || c.ServiceFraction() != 0 {
		t.Fatal("zero counters must yield zero rates, not NaN")
	}
}

func TestAddAndScale(t *testing.T) {
	a := sample()
	b := sample()
	a.Add(b)
	if a.Instructions != 2e9 || a.DTLBMisses != 1e6 {
		t.Fatalf("Add wrong: %+v", a)
	}
	a.Scale(0.5)
	if a.Instructions != 1e9 || a.Cycles != 2e9 {
		t.Fatalf("Scale wrong: %+v", a)
	}
	// Rates are invariant under scaling.
	if math.Abs(a.CPI()-sample().CPI()) > 1e-12 {
		t.Fatal("CPI changed under scaling")
	}
}

func TestValidate(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sample()
	bad.Cycles = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cycles accepted")
	}
	bad = sample()
	bad.ServiceInstructions = 2e9
	if err := bad.Validate(); err == nil {
		t.Fatal("service > total accepted")
	}
}

// Property: Add is commutative and rates stay finite and non-negative
// for non-negative inputs.
func TestQuickAddCommutative(t *testing.T) {
	f := func(a1, a2, b1, b2 uint32) bool {
		a := Counters{Cycles: float64(a1), Instructions: float64(a2) + 1}
		b := Counters{Cycles: float64(b1), Instructions: float64(b2) + 1}
		x, y := a, b
		x.Add(b)
		y.Add(a)
		return x == y && x.CPI() >= 0 && !math.IsNaN(x.CPI())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
