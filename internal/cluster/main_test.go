package cluster

import (
	"log/slog"
	"os"
	"testing"

	"repro/internal/telemetry"
)

// TestMain quiets coordinator and backend access logging: the suite
// deliberately provokes retries, hedges, and failovers, each of which
// logs at Info. Warn keeps genuine failures visible.
func TestMain(m *testing.M) {
	telemetry.SetLogLevel(slog.LevelWarn)
	os.Exit(m.Run())
}
