package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// ErrStreamTruncated marks a measure stream that ended without a
// terminal done (or error) line: the backend died, the connection was
// severed, or a proxy cut the body mid-chunk. Cells delivered before
// the cut are good — the determinism contract makes them bit-identical
// wherever they were computed — so the scheduler keeps them and
// re-dispatches only the remainder.
var ErrStreamTruncated = errors.New("cluster: measure stream truncated")

// MeasureStream posts req to /v1/measure?stream=1 and invokes onCell
// for every cell line as it arrives, in backend completion order.
// Keep-alive lines are consumed internally. A nil return means the
// terminal done line arrived and every requested cell was delivered; a
// stream severed before the terminal line (including mid-line) returns
// an error wrapping ErrStreamTruncated; an in-band error line comes
// back as a backend error. An onCell error aborts the stream and is
// returned as-is.
//
// The exchange's wall time feeds the backend's latency histogram like
// a batched Measure, so streamed and batched traffic share one
// distribution per backend.
func (c *Client) MeasureStream(ctx context.Context, req *service.MeasureRequest, onCell func(sc *service.StreamCell) error) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	buf, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/measure?stream=1", bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("cluster: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("User-Agent", userAgent)
	telemetry.InjectHeaders(ctx, hreq.Header)

	start := time.Now()
	defer func() { c.lat.Observe(time.Since(start)) }()
	resp, err := c.hc.Do(hreq)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return &backendError{Backend: c.base, Msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := resp.Status
		var eb struct {
			Error string `json:"error"`
		}
		if b, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
			if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
				msg = eb.Error
			}
		}
		return &backendError{Backend: c.base, Status: resp.StatusCode, Msg: msg}
	}

	dec := service.NewStreamDecoder(resp.Body)
	delivered := 0
	for {
		ev, err := dec.Next()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				// The body ended (cleanly or mid-line) before a terminal
				// line — the stream-truncation signature.
				return fmt.Errorf("cluster: %s: %w after %d cells", c.base, ErrStreamTruncated, delivered)
			}
			// Malformed or oversized lines mean the byte stream itself was
			// damaged in flight; classify with truncation — transient, and
			// the delivered prefix is still good.
			return fmt.Errorf("cluster: %s: %w: %v", c.base, ErrStreamTruncated, err)
		}
		switch {
		case ev.Cell != nil:
			if ev.Cell.Index < 0 || ev.Cell.Index >= len(req.Cells) {
				return &backendError{Backend: c.base,
					Msg: fmt.Sprintf("stream cell index %d out of range (sent %d cells)", ev.Cell.Index, len(req.Cells))}
			}
			if err := onCell(ev.Cell); err != nil {
				return err
			}
			delivered++
		case ev.Error != "":
			return &backendError{Backend: c.base, Msg: "stream error: " + ev.Error}
		case ev.Done != nil:
			if delivered != len(req.Cells) {
				return &backendError{Backend: c.base,
					Msg: fmt.Sprintf("stream done after %d cells, want %d", delivered, len(req.Cells))}
			}
			return nil
		// Header and keep-alive lines carry no cells; skip them.
		}
	}
}
