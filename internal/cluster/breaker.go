package cluster

import (
	"sync"
	"time"
)

// Breaker is a per-backend circuit breaker. It trips open after
// Threshold consecutive failures; while open, Ready reports false and
// the coordinator routes around the backend. After Cooldown elapses the
// breaker is half-open: trial traffic (the next routed batch, or a
// /healthz probe) is allowed through, a success closes the breaker, and
// a failure re-arms the cooldown without waiting for a fresh run of
// consecutive failures.
//
// Failures are fed from two sources: measure requests that error, and
// the /healthz prober (Cluster.ProbeHealth). Both call Success/Failure;
// the breaker does not distinguish them — an unhealthy answer to either
// is evidence the backend cannot serve.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	fails int
	open  bool
	until time.Time

	opens int64
}

func newBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Ready reports whether traffic may be sent: true when closed, and true
// again once an open breaker's cooldown has elapsed (half-open trial).
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open || !b.now().Before(b.until)
}

// Success records a healthy response and closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.open = false
}

// Failure records an unhealthy response, tripping the breaker at the
// threshold and re-arming the cooldown when a half-open trial fails.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails < b.threshold {
		return
	}
	now := b.now()
	if !b.open || !now.Before(b.until) {
		// Fresh trip, or a failed half-open trial: each counts as one
		// open transition.
		b.opens++
	}
	b.open = true
	b.until = now.Add(b.cooldown)
}

// State renders the breaker state for stats: closed, open, or half-open.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return "closed"
	case b.now().Before(b.until):
		return "open"
	default:
		return "half-open"
	}
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
