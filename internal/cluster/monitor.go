package cluster

import (
	"repro/internal/monitor"
)

// NewMonitor builds a fleet monitor over this cluster's members whose
// scrape loop doubles as the health prober: every /healthz result feeds
// the matching circuit breaker exactly as ProbeHealth does, so a
// coordinator running a monitor needs no separate StartProber — one
// jittered poll wave drives both alerting and routing. A caller-set
// OnHealth still runs after the breaker update.
func (cl *Cluster) NewMonitor(opts monitor.Options) *monitor.Monitor {
	userHook := opts.OnHealth
	opts.OnHealth = func(backend string, healthy bool) {
		if b := cl.breakers[backend]; b != nil {
			if healthy {
				b.Success()
			} else {
				b.Failure()
			}
		}
		if userHook != nil {
			userHook(backend, healthy)
		}
	}
	return monitor.New(cl.Backends(), opts)
}
