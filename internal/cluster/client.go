// Package cluster is the scale-out layer over powerperfd: a coordinator
// that runs study workloads against N backends, sharding cells with
// rendezvous hashing and wrapping every request in retries, a
// per-backend circuit breaker, tail-latency hedging, and failover.
//
// The whole layer leans on the repository's determinism contract: a
// measurement is a pure function of the (benchmark, processor, config,
// seed) tuple, bit-identical wherever it is computed. That makes every
// resilience tactic trivially correct — a retried, hedged, or failed-
// over cell returns exactly the bytes the first attempt would have, so
// the coordinator can duplicate work freely and take whichever answer
// arrives first, and backend caches deduplicate whatever the duplicated
// work recomputes.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Version identifies the coordinator on the wire; backends see it in
// the User-Agent header of every request.
const Version = "0.4.0"

// userAgent is the User-Agent header value sent with every request; the
// build token lets backend access logs attribute traffic to an exact
// coordinator binary.
var userAgent = "powerperf-cluster/" + Version + " " + telemetry.BuildInfo().UserAgentToken()

// Client is a typed HTTP client for one powerperfd backend.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration // per-request deadline; <= 0 means none

	// lat is this backend's measure-exchange latency distribution, one
	// labeled series of the shared cluster family; it surfaces in the
	// coordinator's Stats and in /metricsz when the coordinator shares a
	// process with a served registry.
	lat *telemetry.Histogram
}

// NewClient builds a client for the backend at base (e.g.
// "http://127.0.0.1:8722"). A nil hc selects http.DefaultClient;
// timeout is the per-request deadline applied on top of the caller's
// context.
func NewClient(base string, hc *http.Client, timeout time.Duration) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{
		base:    base,
		hc:      hc,
		timeout: timeout,
		lat: telemetry.Default.LabeledHistogram("powerperf_cluster_backend_request_seconds",
			"Wall time of measure exchanges per backend.", "backend", base),
	}
}

// Base returns the backend base URL.
func (c *Client) Base() string { return c.base }

// backendError is a failed HTTP exchange with a backend. Status is 0
// for transport-level failures (connection refused, timeout).
type backendError struct {
	Backend string
	Status  int
	Msg     string
}

func (e *backendError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("cluster: %s: %s", e.Backend, e.Msg)
	}
	return fmt.Sprintf("cluster: %s: HTTP %d: %s", e.Backend, e.Status, e.Msg)
}

// permanent reports whether err can never succeed on another backend or
// attempt: client-side mistakes (4xx validation errors) are permanent,
// transport failures and 5xx/503 responses are not.
func permanent(err error) bool {
	var be *backendError
	if errors.As(err, &be) {
		return be.Status >= 400 && be.Status < 500 &&
			be.Status != http.StatusRequestTimeout && be.Status != http.StatusTooManyRequests
	}
	return false
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: marshal request: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("cluster: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", userAgent)
	// Propagate the caller's trace so the backend's spans stitch into
	// the coordinator's view (a no-op when ctx carries no span).
	telemetry.InjectHeaders(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		// Surface the caller's cancellation as such; everything else is
		// a transport failure attributable to the backend.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return &backendError{Backend: c.base, Msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := resp.Status
		var eb struct {
			Error string `json:"error"`
		}
		if b, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
			if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
				msg = eb.Error
			}
		}
		return &backendError{Backend: c.base, Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &backendError{Backend: c.base, Msg: "decode response: " + err.Error()}
	}
	return nil
}

// Measure posts a batch measure request and returns the response. The
// exchange's wall time (success or failure) feeds the backend's
// latency histogram.
func (c *Client) Measure(ctx context.Context, req *service.MeasureRequest) (*service.MeasureResponse, error) {
	var resp service.MeasureResponse
	start := time.Now()
	err := c.do(ctx, http.MethodPost, "/v1/measure", req, &resp)
	c.lat.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	if len(resp.Cells) != len(req.Cells) {
		return nil, &backendError{Backend: c.base,
			Msg: fmt.Sprintf("response has %d cells, want %d", len(resp.Cells), len(req.Cells))}
	}
	return &resp, nil
}

// Healthz probes the backend's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches the backend's /statsz counters.
func (c *Client) Stats(ctx context.Context) (*service.Stats, error) {
	var st service.Stats
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Resolver memoizes one workload and fleet instance for reconstructing
// wire cells: workload.ByName and proc.ByName hand out fresh
// mutation-isolated copies on every call, which priced a full fleet
// construction into every reconstructed cell. The coordinator never
// mutates the resolved values, so one resolver serves every cell of a
// study. Read-only after construction; safe for concurrent use.
type Resolver struct {
	benches map[string]*workload.Benchmark
	procs   map[string]*proc.Processor
}

// NewResolver builds a resolver over the full workload and fleet.
func NewResolver() *Resolver {
	benches := workload.All()
	fleet := proc.Fleet()
	r := &Resolver{
		benches: make(map[string]*workload.Benchmark, len(benches)),
		procs:   make(map[string]*proc.Processor, len(fleet)),
	}
	for _, b := range benches {
		r.benches[b.Name] = b
	}
	for _, p := range fleet {
		r.procs[p.Name] = p
	}
	return r
}

// MeasurementFromCell reconstructs the harness Measurement from a
// full-detail wire cell. Benchmark and processor resolve to the same
// values a local harness would use, and every float64 round-trips
// through JSON exactly, so the reconstruction is bit-identical to a
// local measurement.
func (rv *Resolver) MeasurementFromCell(cr *service.CellResult) (*harness.Measurement, error) {
	if cr.Full == nil {
		return nil, fmt.Errorf("cluster: cell %s/%s lacks full detail", cr.Benchmark, cr.Processor)
	}
	b, ok := rv.benches[cr.Benchmark]
	if !ok {
		return nil, fmt.Errorf("cluster: reconstruct cell: workload: unknown benchmark %q", cr.Benchmark)
	}
	p, ok := rv.procs[cr.Processor]
	if !ok {
		return nil, fmt.Errorf("cluster: reconstruct cell: proc: unknown processor %q", cr.Processor)
	}
	m := &harness.Measurement{
		Bench: b,
		CP: proc.ConfiguredProcessor{Proc: p, Config: proc.Config{
			Cores:    cr.Config.Cores,
			SMTWays:  cr.Config.SMTWays,
			ClockGHz: cr.Config.ClockGHz,
			Turbo:    cr.Config.Turbo,
		}},
		Runs:     make([]harness.RunSample, len(cr.Full.RunSamples)),
		Seconds:  cr.Seconds,
		Watts:    cr.Watts,
		EnergyJ:  cr.EnergyJ,
		Counters: cr.Full.Counters.Counters(),
		TimeCI:   cr.Full.TimeCI.CI(),
		PowerCI:  cr.Full.PowerCI.CI(),
	}
	for i, r := range cr.Full.RunSamples {
		m.Runs[i] = harness.RunSample{Seconds: r.Seconds, Watts: r.Watts, Counters: r.Counters.Counters()}
	}
	return m, nil
}

// MeasurementFromCell is the standalone form for one-off callers; batch
// reconstruction should share a Resolver.
func MeasurementFromCell(cr *service.CellResult) (*harness.Measurement, error) {
	return NewResolver().MeasurementFromCell(cr)
}
