package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 5*time.Second)
	b.now = func() time.Time { return now }

	if !b.Ready() || b.State() != "closed" {
		t.Fatal("new breaker should be closed and ready")
	}

	b.Failure()
	b.Failure()
	if !b.Ready() {
		t.Fatal("breaker tripped below threshold")
	}
	b.Failure()
	if b.Ready() || b.State() != "open" {
		t.Fatalf("breaker should be open after 3 failures, state=%s", b.State())
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("opens=%d, want 1", got)
	}

	// A success mid-run resets the consecutive count.
	now = now.Add(6 * time.Second)
	if !b.Ready() || b.State() != "half-open" {
		t.Fatalf("cooldown elapsed: want half-open and ready, state=%s", b.State())
	}

	// A failed half-open trial re-arms the cooldown immediately — no
	// fresh run of consecutive failures needed — and counts as an open.
	b.Failure()
	if b.Ready() || b.State() != "open" {
		t.Fatalf("failed trial should re-open, state=%s", b.State())
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens=%d, want 2 after failed trial", got)
	}

	// A successful trial closes it and resets the failure count.
	now = now.Add(6 * time.Second)
	b.Success()
	if !b.Ready() || b.State() != "closed" {
		t.Fatalf("success should close, state=%s", b.State())
	}
	b.Failure()
	b.Failure()
	if !b.Ready() {
		t.Fatal("failure count should have reset on success")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(3, time.Minute)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if !b.Ready() || b.Opens() != 0 {
		t.Fatalf("interleaved successes must prevent tripping: ready=%v opens=%d", b.Ready(), b.Opens())
	}
}
