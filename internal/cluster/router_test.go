package cluster

import (
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/proc"
)

func testMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("http://backend-%d:8722", i)
	}
	return ms
}

// gridKeys is every cell of the full 45x61 study at seed 42 — the key
// population the router shards in production.
func gridKeys(t *testing.T) []string {
	t.Helper()
	jobs := harness.GridJobs(proc.ConfigSpace(), nil)
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = routeKey(42, j)
	}
	return keys
}

func TestRouterStability(t *testing.T) {
	members := testMembers(3)
	r1 := NewRouter(members)
	// Same member set presented in a different order (and with a
	// duplicate) must route identically: scores, not positions, decide.
	r2 := NewRouter([]string{members[2], members[0], members[1], members[0]})
	for _, key := range gridKeys(t) {
		if got1, got2 := r1.Route(key), r2.Route(key); got1 != got2 {
			t.Fatalf("Route(%q) unstable across member orderings: %q vs %q", key, got1, got2)
		}
		if r1.Route(key) != r1.Rank(key)[0] {
			t.Fatalf("Route(%q) disagrees with Rank[0]", key)
		}
	}
}

func TestRouterBalance(t *testing.T) {
	members := testMembers(3)
	r := NewRouter(members)
	counts := make(map[string]int)
	keys := gridKeys(t)
	for _, key := range keys {
		counts[r.Route(key)]++
	}
	mean := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		c := counts[m]
		if float64(c) < 0.7*mean || float64(c) > 1.3*mean {
			t.Fatalf("member %s owns %d of %d cells, outside 30%% of the %.0f mean: %v",
				m, c, len(keys), mean, counts)
		}
	}
}

func TestRouterMinimalDisruption(t *testing.T) {
	members := testMembers(3)
	r := NewRouter(members)
	dead := members[1]
	survivors := NewRouter([]string{members[0], members[2]})
	moved := 0
	for _, key := range gridKeys(t) {
		before := r.Route(key)
		after := survivors.Route(key)
		if before != dead {
			// Keys the dead member never owned must not move.
			if after != before {
				t.Fatalf("key %q moved %q -> %q though %q was not its owner", key, before, after, dead)
			}
			continue
		}
		moved++
		// The dead member's keys must land on their second rank.
		if want := r.Rank(key)[1]; after != want {
			t.Fatalf("key %q failed over to %q, want second rank %q", key, after, want)
		}
	}
	if moved == 0 {
		t.Fatal("dead member owned no keys; balance test should have caught this")
	}
}

func TestRouteExcluding(t *testing.T) {
	members := testMembers(4)
	r := NewRouter(members)
	key := "42|mcf|i7 (45)|4|2|2.6|true"
	rank := r.Rank(key)
	excluded := map[string]bool{}
	for i, want := range rank {
		if got := r.RouteExcluding(key, excluded); got != want {
			t.Fatalf("after excluding %d members: got %q, want rank[%d]=%q", i, got, i, want)
		}
		excluded[want] = true
	}
	if got := r.RouteExcluding(key, excluded); got != "" {
		t.Fatalf("all members excluded: got %q, want empty", got)
	}
}

// FuzzRoute fuzzes the rendezvous properties the resilience layer
// depends on: determinism (same cell, same member set, same owner),
// membership (the owner is a member), and minimal disruption (removing
// a non-owner never moves a key; removing the owner promotes exactly
// the second rank).
func FuzzRoute(f *testing.F) {
	f.Add("42|mcf|i7 (45)|4|2|2.6|true", uint8(3))
	f.Add("", uint8(1))
	f.Add("7|lusearch|Atom (45)|1|1|0.8|false", uint8(7))
	f.Fuzz(func(t *testing.T, key string, n uint8) {
		members := testMembers(int(n%8) + 1)
		r := NewRouter(members)

		owner := r.Route(key)
		if owner != r.Route(key) {
			t.Fatal("Route not deterministic")
		}
		found := false
		for _, m := range members {
			if m == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q not a member of %v", owner, members)
		}
		rank := r.Rank(key)
		if len(rank) != len(r.Members()) {
			t.Fatalf("Rank returned %d members, want %d", len(rank), len(r.Members()))
		}
		if rank[0] != owner {
			t.Fatalf("Rank[0]=%q disagrees with Route=%q", rank[0], owner)
		}

		if len(members) < 2 {
			return
		}
		// Remove a non-owner: the key must not move.
		var without []string
		removedNonOwner := false
		for _, m := range members {
			if !removedNonOwner && m != owner {
				removedNonOwner = true
				continue
			}
			without = append(without, m)
		}
		if got := NewRouter(without).Route(key); got != owner {
			t.Fatalf("removing a non-owner moved key: %q -> %q", owner, got)
		}
		// Remove the owner: the key must land on the second rank.
		var survivors []string
		for _, m := range members {
			if m != owner {
				survivors = append(survivors, m)
			}
		}
		if got := NewRouter(survivors).Route(key); got != rank[1] {
			t.Fatalf("removing the owner sent key to %q, want second rank %q", got, rank[1])
		}
	})
}
