package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/service"
)

// deadable simulates a backend process death: once dead, every new
// request is severed without a response (the client sees a transport
// error, exactly as with a killed process), while the wrapped service
// keeps running so in-flight compute drains harmlessly.
type deadable struct {
	h    http.Handler
	dead atomic.Bool
}

func (d *deadable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	d.h.ServeHTTP(w, r)
}

func newBackend(t *testing.T, opts service.Options) (*service.Server, *httptest.Server, *deadable) {
	t.Helper()
	srv := service.NewServer(opts)
	d := &deadable{h: srv.Handler()}
	ts := httptest.NewServer(d)
	t.Cleanup(ts.Close)
	return srv, ts, d
}

// seedPtr builds a cluster Options seed pointer.
func seedPtr(v int64) *int64 { return &v }

func stockJobs(t *testing.T, n int) []harness.Job {
	t.Helper()
	cps := proc.StockConfigs()
	if n > len(cps) {
		n = len(cps)
	}
	return harness.GridJobs(cps[:n], nil)
}

// TestClusterMatchesLocalHarness is the contract test: a single-backend
// cluster returns measurements deeply equal to a local harness at the
// same seed — same runs, counters, and confidence intervals, bit for
// bit.
func TestClusterMatchesLocalHarness(t *testing.T) {
	_, ts, _ := newBackend(t, service.Options{Seed: 42})
	cl, err := New([]string{ts.URL}, Options{Seed: seedPtr(42)})
	if err != nil {
		t.Fatal(err)
	}
	jobs := stockJobs(t, 2)
	remote, err := cl.MeasureBatch(context.Background(), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}

	h, err := harness.New(42)
	if err != nil {
		t.Fatal(err)
	}
	local, err := h.MeasureBatch(context.Background(), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("got %d measurements, want %d", len(remote), len(local))
	}
	for i := range local {
		if !reflect.DeepEqual(remote[i], local[i]) {
			t.Fatalf("job %d (%s on %s): remote measurement differs from local",
				i, jobs[i].Bench.Name, jobs[i].CP)
		}
	}
	if st := cl.Stats(); st.CellsMeasured != int64(len(jobs)) {
		t.Fatalf("cells_measured=%d, want %d", st.CellsMeasured, len(jobs))
	}
}

// TestClusterStudyByteIdenticalAfterBackendDeath is the acceptance
// test: a 3-backend cluster regenerates the full seed-42 study, one
// backend is killed partway through, and the merged CSVs still match
// the committed dataset byte for byte — the determinism contract makes
// retry plus failover invisible in the output.
func TestClusterStudyByteIdenticalAfterBackendDeath(t *testing.T) {
	var victim *deadable
	var victimTS *httptest.Server
	var victimCells atomic.Int64
	killAt := int64(150)

	hooks := &service.Hooks{BeforeMeasure: func(seed int64, bench, processor string) error {
		if victimCells.Add(1) == killAt {
			victim.dead.Store(true)
			victimTS.CloseClientConnections()
		}
		return nil
	}}

	_, ts0, d0 := newBackend(t, service.Options{Seed: 42, Hooks: hooks})
	victim, victimTS = d0, ts0
	_, ts1, _ := newBackend(t, service.Options{Seed: 42})
	_, ts2, _ := newBackend(t, service.Options{Seed: 42})

	cl, err := New([]string{ts0.URL, ts1.URL, ts2.URL}, Options{
		Seed:             seedPtr(42),
		MaxAttempts:      3,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // dead stays dead for this test
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	ref, err := cl.Reference(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}

	var mbuf, abuf bytes.Buffer
	if err := experiments.StreamMeasurementsCSVFrom(ctx, cl, ref, nil, &mbuf, 0); err != nil {
		t.Fatal(err)
	}
	if err := experiments.StreamAggregatesCSVFrom(ctx, cl, ref, nil, &abuf, 0); err != nil {
		t.Fatal(err)
	}

	if !victim.dead.Load() {
		t.Fatalf("victim backend was never killed (computed %d cells, kill at %d)", victimCells.Load(), killAt)
	}

	for file, got := range map[string][]byte{
		"measurements.csv": mbuf.Bytes(),
		"aggregates.csv":   abuf.Bytes(),
	} {
		want, err := os.ReadFile(filepath.Join("..", "..", "dataset", file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: cluster bytes differ from committed dataset/%s (%d vs %d bytes)",
				file, file, len(got), len(want))
		}
	}

	st := cl.Stats()
	if st.Failovers == 0 {
		t.Errorf("expected failovers after backend death, got 0; stats %+v", st)
	}
	if st.Retries == 0 {
		t.Errorf("expected retries after backend death, got 0; stats %+v", st)
	}
	if st.BreakerOpens == 0 {
		t.Errorf("expected the dead backend's breaker to open, got 0 opens; stats %+v", st)
	}

	// The resilience counters must also be scrapeable.
	var metrics bytes.Buffer
	cl.WriteMetrics(&metrics)
	for _, want := range []string{
		"powerperf_cluster_retries_total",
		"powerperf_cluster_failovers_total",
		"powerperf_cluster_breaker_opens_total",
		"powerperf_cluster_hedges_fired_total",
	} {
		if !bytes.Contains(metrics.Bytes(), []byte(want)) {
			t.Errorf("cluster metrics missing %s", want)
		}
	}
}

// TestClusterHedging makes one backend straggle and asserts the
// coordinator hedges its batches to the fast backend, wins there, and
// still returns measurements identical to a local harness.
func TestClusterHedging(t *testing.T) {
	slowHooks := &service.Hooks{BeforeMeasure: func(seed int64, bench, processor string) error {
		time.Sleep(40 * time.Millisecond)
		return nil
	}}
	_, slow, _ := newBackend(t, service.Options{Seed: 42, Hooks: slowHooks})
	_, fast, _ := newBackend(t, service.Options{Seed: 42})

	cl, err := New([]string{slow.URL, fast.URL}, Options{
		Seed:       seedPtr(42),
		HedgeDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := stockJobs(t, 1)
	remote, err := cl.MeasureBatch(context.Background(), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}

	st := cl.Stats()
	if st.HedgesFired == 0 {
		t.Errorf("expected hedges against the straggling backend, got 0; stats %+v", st)
	}
	if st.HedgeWins == 0 {
		t.Errorf("expected at least one hedge win, got 0; stats %+v", st)
	}

	// SLO attribution: every hedge must be charged against the straggler,
	// never the fast backend that covered for it.
	for _, be := range st.Backends {
		switch be.URL {
		case slow.URL:
			if be.HedgedAway == 0 {
				t.Errorf("straggler %s has no hedged_away attribution; stats %+v", be.URL, st)
			}
			if be.HedgeLosses == 0 {
				t.Errorf("straggler %s has no hedge_losses attribution; stats %+v", be.URL, st)
			}
		case fast.URL:
			// A cold-start hedge may fire against the fast backend too,
			// but it must never lose the race to the 40ms straggler.
			if be.HedgeLosses != 0 {
				t.Errorf("fast backend %s charged with hedge losses (%d)", be.URL, be.HedgeLosses)
			}
		}
	}
	var metrics bytes.Buffer
	cl.WriteMetrics(&metrics)
	for _, want := range []string{
		"powerperf_cluster_hedged_away_total{backend=",
		"powerperf_cluster_hedge_losses_total{backend=",
		"powerperf_cluster_failed_over_total{backend=",
	} {
		if !bytes.Contains(metrics.Bytes(), []byte(want)) {
			t.Errorf("cluster metrics missing attribution family %s", want)
		}
	}

	h, err := harness.New(42)
	if err != nil {
		t.Fatal(err)
	}
	local, err := h.MeasureBatch(context.Background(), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if !reflect.DeepEqual(remote[i], local[i]) {
			t.Fatalf("job %d: hedged measurement differs from local", i)
		}
	}
}

// TestClusterBreakerFedByHealthz verifies the /healthz prober trips an
// unhealthy backend's breaker, traffic routes around it, and a
// recovered backend rejoins.
func TestClusterBreakerFedByHealthz(t *testing.T) {
	_, good, _ := newBackend(t, service.Options{Seed: 42})
	var healthy atomic.Bool
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(sick.Close)

	cl, err := New([]string{good.URL, sick.URL}, Options{
		Seed:             seedPtr(42),
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl.ProbeHealth(ctx)
	cl.ProbeHealth(ctx)

	st := cl.Stats()
	var sickState string
	for _, b := range st.Backends {
		if b.URL == sick.URL {
			sickState = b.State
		}
	}
	if sickState != "open" {
		t.Fatalf("sick backend breaker state %q, want open; stats %+v", sickState, st)
	}
	if st.BreakerOpens == 0 {
		t.Fatalf("expected breaker opens from health probes, got 0")
	}

	// With the breaker open, the whole batch routes to the good backend.
	jobs := stockJobs(t, 1)
	ms, err := cl.MeasureBatch(ctx, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(jobs) {
		t.Fatalf("got %d measurements, want %d", len(ms), len(jobs))
	}

	// Recovery: a healthy probe closes the breaker.
	healthy.Store(true)
	cl.ProbeHealth(ctx)
	for _, b := range cl.Stats().Backends {
		if b.URL == sick.URL && b.State != "closed" {
			t.Fatalf("recovered backend breaker state %q, want closed", b.State)
		}
	}
}

// TestClusterCSVMatchesLocalAtSeedZero pins the byte-identity contract
// at a second seed: a 2-backend cluster and a local harness at seed 0
// must stream identical measurements.csv and aggregates.csv bytes over
// a slice of the grid. Seed 42 is covered against the committed dataset
// by TestClusterStudyByteIdenticalAfterBackendDeath; this test makes
// sure nothing in the pipeline is accidentally specialized to the
// default seed, and exercises a batch size that does not divide the
// per-configuration cell count.
func TestClusterCSVMatchesLocalAtSeedZero(t *testing.T) {
	const seed = 0
	_, ts0, _ := newBackend(t, service.Options{Seed: seed})
	_, ts1, _ := newBackend(t, service.Options{Seed: seed})
	cl, err := New([]string{ts0.URL, ts1.URL}, Options{Seed: seedPtr(seed), BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	cps := proc.StockConfigs()[:2]

	h, err := harness.New(seed)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h.Reference()
	if err != nil {
		t.Fatal(err)
	}
	stream := func(src experiments.Source) (string, string) {
		t.Helper()
		var mbuf, abuf bytes.Buffer
		if err := experiments.StreamMeasurementsCSVFrom(ctx, src, ref, cps, &mbuf, 0); err != nil {
			t.Fatal(err)
		}
		if err := experiments.StreamAggregatesCSVFrom(ctx, src, ref, cps, &abuf, 0); err != nil {
			t.Fatal(err)
		}
		return mbuf.String(), abuf.String()
	}

	localM, localA := stream(h)
	clusterM, clusterA := stream(cl)
	if localM != clusterM {
		t.Errorf("measurements.csv: cluster bytes differ from local at seed %d", seed)
	}
	if localA != clusterA {
		t.Errorf("aggregates.csv: cluster bytes differ from local at seed %d", seed)
	}
}
