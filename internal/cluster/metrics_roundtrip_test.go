package cluster

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// TestClusterMetricsRoundTrip is the exposition guard for the
// coordinator's metrics page: WriteMetrics must lint clean, parse, and
// survive render→parse with every family — including the per-backend
// breaker_state samples, whose URL label values exercise the escaping
// path — intact.
func TestClusterMetricsRoundTrip(t *testing.T) {
	_, ts, _ := newBackend(t, service.Options{Seed: 42})
	cl, err := New([]string{ts.URL}, Options{Seed: seedPtr(42)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MeasureBatch(context.Background(), stockJobs(t, 2), 0); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	cl.WriteMetrics(&buf)
	text := buf.String()
	if problems := telemetry.LintPrometheus(text); len(problems) != 0 {
		t.Fatalf("cluster metrics lint problems: %v", problems)
	}
	fams, err := telemetry.ParsePrometheus(text)
	if err != nil {
		t.Fatalf("cluster metrics do not parse: %v", err)
	}
	breaker := false
	for _, f := range fams {
		if f.Name == "powerperf_cluster_breaker_state" {
			breaker = true
			if len(f.Samples) != 1 {
				t.Fatalf("breaker_state samples: %+v, want one per backend", f.Samples)
			}
			if v, ok := f.Samples[0].Label("backend"); !ok || v != ts.URL {
				t.Fatalf("breaker_state backend label %q, want %q", v, ts.URL)
			}
		}
	}
	if !breaker {
		t.Fatal("cluster metrics missing powerperf_cluster_breaker_state")
	}

	var rendered bytes.Buffer
	telemetry.RenderPrometheus(&rendered, fams)
	again, err := telemetry.ParsePrometheus(rendered.String())
	if err != nil {
		t.Fatalf("rendered cluster metrics do not re-parse: %v", err)
	}
	if !reflect.DeepEqual(fams, again) {
		t.Fatal("cluster metrics round-trip lost information")
	}
}
