package cluster

import (
	"hash/fnv"
	"sort"
)

// Router shards cells across backends with rendezvous (highest-random-
// weight) hashing: every (key, member) pair gets a pseudo-random score,
// and a key belongs to the member with the highest score. Two properties
// make it the right fit here:
//
//   - Stability: a key's owner depends only on the member set, so every
//     coordinator (and every retry) routes the same cell to the same
//     backend, keeping that backend's LRU shard hot for exactly its
//     slice of the study grid.
//
//   - Minimal disruption: removing a member only reassigns the keys that
//     member owned — each to its second-ranked backend — so failover
//     after a backend death re-spreads only the dead backend's cells.
type Router struct {
	members []string
}

// NewRouter builds a router over the given members, deduplicated; order
// does not matter (scores, not positions, decide ownership).
func NewRouter(members []string) *Router {
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	return &Router{members: uniq}
}

// Members returns the member set in sorted order.
func (r *Router) Members() []string {
	return append([]string(nil), r.members...)
}

// score is the rendezvous weight of key on member. FNV-64a over
// member NUL key: cheap, stateless, and uniform enough that a 45x61
// grid spreads within a few percent of even (see FuzzRoute).
func score(member, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(member))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Rank returns the members ordered by descending score for key: Rank[0]
// is the key's owner, Rank[1] its failover target, and so on. Ties break
// by member name so the order is total and deterministic.
func (r *Router) Rank(key string) []string {
	ranked := append([]string(nil), r.members...)
	scores := make(map[string]uint64, len(ranked))
	for _, m := range ranked {
		scores[m] = score(m, key)
	}
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Route returns key's owner, or "" for an empty member set.
func (r *Router) Route(key string) string {
	var best string
	var bestScore uint64
	for _, m := range r.members {
		s := score(m, key)
		if best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// RouteExcluding returns key's highest-ranked owner not in excluded, or
// "" when every member is excluded — the failover routing step.
func (r *Router) RouteExcluding(key string, excluded map[string]bool) string {
	var best string
	var bestScore uint64
	for _, m := range r.members {
		if excluded[m] {
			continue
		}
		s := score(m, key)
		if best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}
