package cluster

import (
	"context"
	"log/slog"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// measureOnce performs one hedged batch exchange: the request goes to
// primary, and if no answer has arrived after the hedge delay, a
// duplicate of the same batch goes to hedge (the cells' next-ranked
// live backend). The first successful response wins and the loser's
// request is cancelled; by the determinism contract both responses are
// bit-identical, so taking the earlier one can never change the study's
// bytes — hedging buys back tail latency, nothing else. Whatever the
// loser computed before cancellation stays in its backend's cache,
// deduplicating any later retry.
//
// A hedge of "" (no live second backend) or a non-positive delay
// degrades to a plain exchange. Breakers are fed per backend: each
// response, win or lose, is evidence about the backend that produced
// it.
func (cl *Cluster) measureOnce(ctx context.Context, primary, hedge string, req *service.MeasureRequest) (*service.MeasureResponse, string, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type exchange struct {
		resp    *service.MeasureResponse
		backend string
		err     error
	}
	ch := make(chan exchange, 2)
	launch := func(backend string) {
		go func() {
			resp, err := cl.clients[backend].Measure(cctx, req)
			ch <- exchange{resp, backend, err}
		}()
	}

	launch(primary)
	inflight := 1

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedge != "" && cl.opts.HedgeDelay > 0 {
		hedgeTimer = time.NewTimer(cl.opts.HedgeDelay)
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	fireHedge := func() {
		hedgeC = nil
		if hedge == "" || !cl.breakers[hedge].Ready() {
			return
		}
		cl.hedgesFired.Add(1)
		cl.attr.get(primary).hedgedAway.Add(1)
		// The hedge span marks the decision instant; the duplicate
		// request itself is visible as the hedge backend's server span
		// under the same trace.
		_, hs := cl.tracer.StartSpan(cctx, "cluster.hedge",
			telemetry.String("primary", primary), telemetry.String("hedge", hedge))
		hs.End()
		cl.logger.InfoContext(cctx, "hedge fired",
			slog.String("primary", primary), slog.String("hedge", hedge))
		launch(hedge)
		inflight++
	}

	var lastErr error
	for {
		select {
		case ex := <-ch:
			inflight--
			if ex.err == nil {
				cl.breakers[ex.backend].Success()
				if ex.backend != primary {
					cl.hedgeWins.Add(1)
					cl.attr.get(primary).hedgeLosses.Add(1)
				}
				return ex.resp, ex.backend, nil
			}
			if cctx.Err() == nil || ctx.Err() != nil {
				// A real failure (not our own cancellation of the loser):
				// feed the breaker unless the request itself was invalid.
				if !permanent(ex.err) && ctx.Err() == nil {
					cl.breakers[ex.backend].Failure()
				}
				lastErr = ex.err
			}
			if permanent(ex.err) {
				return nil, "", ex.err
			}
			if inflight == 0 {
				// Primary failed with the hedge never fired: fire it now
				// as an immediate failover attempt rather than waiting
				// out the timer.
				if hedgeC != nil {
					fireHedge()
					if inflight > 0 {
						continue
					}
				}
				if err := ctx.Err(); err != nil {
					return nil, "", err
				}
				return nil, "", lastErr
			}
		case <-hedgeC:
			fireHedge()
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
}
