package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"log/slog"

	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Options configures a Cluster. The zero value selects sane defaults.
type Options struct {
	// Seed is the study seed sent with every measure request. nil
	// defaults to 42, the committed dataset's seed; a pointer (rather
	// than treating 0 as unset) keeps seed 0 a usable seed.
	Seed *int64
	// BatchSize is the number of cells per measure request; <= 0 selects
	// 61, one configuration's full benchmark row.
	BatchSize int
	// MaxAttempts bounds tries of one batch against one backend
	// (first attempt plus retries); <= 0 selects 3.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between retries; they default to 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeDelay is how long a batch may straggle before a duplicate is
	// sent to the next-ranked backend; <= 0 disables hedging. Defaults
	// to 0 (callers opt in; the fullstudy command sets it).
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// backend's circuit breaker; <= 0 selects 3.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects traffic
	// before allowing a half-open trial; <= 0 selects 5s.
	BreakerCooldown time.Duration
	// RequestTimeout is the per-request deadline; <= 0 selects 5m
	// (a cold 61-cell batch computes a JVM benchmark row).
	RequestTimeout time.Duration
	// Workers bounds concurrent in-flight batch requests when
	// MeasureBatch is called with workers <= 0; <= 0 selects
	// 4 per backend.
	Workers int
	// HTTPClient overrides the transport; nil selects a dedicated
	// client with sensible connection pooling.
	HTTPClient *http.Client
	// Tracer records coordinator spans (routing, attempts, retries,
	// hedges, failovers); nil disables span capture. Tracing is a pure
	// side channel: study bytes are identical with or without it.
	Tracer *telemetry.Tracer
}

func (o Options) withDefaults(backends int) Options {
	if o.Seed == nil {
		s := int64(42)
		o.Seed = &s
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 61
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Minute
	}
	if o.Workers <= 0 {
		o.Workers = 4 * backends
	}
	return o
}

// Cluster coordinates the study across N powerperfd backends: it shards
// cells with rendezvous hashing, wraps every batch in retries with
// jittered exponential backoff, hedges stragglers to a second backend,
// trips per-backend circuit breakers, and fails a dead backend's cells
// over to the survivors. MeasureBatch satisfies the same contract as
// harness.MeasureBatch, so everything built on the local harness — the
// CSV streamers in particular — runs unchanged against a fleet.
type Cluster struct {
	opts     Options
	seed     int64
	router   *Router
	clients  map[string]*Client
	breakers map[string]*Breaker
	resolver *Resolver
	tracer   *telemetry.Tracer
	logger   *slog.Logger

	batchesSent atomic.Int64
	retries     atomic.Int64
	hedgesFired atomic.Int64
	hedgeWins   atomic.Int64
	failovers   atomic.Int64
	cellsDone   atomic.Int64
	attr        *attribution
}

// New builds a cluster over the given backend base URLs.
func New(backends []string, opts Options) (*Cluster, error) {
	router := NewRouter(backends)
	members := router.Members()
	if len(members) == 0 {
		return nil, errors.New("cluster: no backends")
	}
	opts = opts.withDefaults(len(members))
	hc := opts.HTTPClient
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = opts.Workers
		hc = &http.Client{Transport: tr}
	}
	cl := &Cluster{
		opts:     opts,
		seed:     *opts.Seed,
		router:   router,
		clients:  make(map[string]*Client, len(members)),
		breakers: make(map[string]*Breaker, len(members)),
		resolver: NewResolver(),
		tracer:   opts.Tracer,
		logger:   telemetry.Logger("cluster"),
		attr:     newAttribution(members),
	}
	for _, m := range members {
		cl.clients[m] = NewClient(m, hc, opts.RequestTimeout)
		cl.breakers[m] = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	return cl, nil
}

// Backends returns the member set in sorted order.
func (cl *Cluster) Backends() []string { return cl.router.Members() }

// Tracer returns the coordinator's span recorder (nil when tracing is
// disabled).
func (cl *Cluster) Tracer() *telemetry.Tracer { return cl.tracer }

// routeKey is a job's rendezvous key: exactly the determinism tuple, so
// every coordinator shards identically and a backend's cache sees a
// stable slice of the grid. strconv appends render the same bytes the
// former fmt.Sprintf("%d|%s|%s|%d|%d|%.17g|%t", ...) did, so routing
// is unchanged across coordinator versions.
func routeKey(seed int64, j harness.Job) string {
	cfg := j.CP.Config
	b := make([]byte, 0, 64)
	b = strconv.AppendInt(b, seed, 10)
	b = append(b, '|')
	b = append(b, j.Bench.Name...)
	b = append(b, '|')
	b = append(b, j.CP.Proc.Name...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(cfg.Cores), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(cfg.SMTWays), 10)
	b = append(b, '|')
	b = strconv.AppendFloat(b, cfg.ClockGHz, 'g', 17, 64)
	b = append(b, '|')
	b = strconv.AppendBool(b, cfg.Turbo)
	return string(b)
}

// cellRequest renders a job as an explicit wire cell.
func cellRequest(j harness.Job) service.CellRequest {
	cfg := j.CP.Config
	return service.CellRequest{
		Benchmark: j.Bench.Name,
		Processor: j.CP.Proc.Name,
		Config: &service.ConfigJSON{
			Cores: cfg.Cores, SMTWays: cfg.SMTWays, ClockGHz: cfg.ClockGHz, Turbo: cfg.Turbo,
		},
	}
}

// MeasureBatch measures jobs across the fleet and returns them in job
// order, satisfying the harness.MeasureBatch contract: results are
// bit-identical to a local harness run, the first permanent error
// cancels the batch, and ctx aborts at batch granularity. workers <= 0
// selects Options.Workers concurrent in-flight requests.
func (cl *Cluster) MeasureBatch(ctx context.Context, jobs []harness.Job, workers int) ([]*harness.Measurement, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = cl.opts.Workers
	}

	// The batch root span: every routing decision, attempt, retry,
	// hedge, and failover below parents under it, and backends adopt
	// its trace id via header propagation — one trace covers the whole
	// distributed batch.
	ctx, batchSpan := cl.tracer.StartSpan(ctx, "cluster.MeasureBatch",
		telemetry.Int("jobs", len(jobs)), telemetry.Int("workers", workers))
	defer batchSpan.End()

	out := make([]*harness.Measurement, len(jobs))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	// Mutex, not atomic.Value: concurrent failures carry heterogeneous
	// concrete error types, which atomic.Value.CompareAndSwap rejects by
	// panicking.
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	// dispatch groups the given job indices by their highest-ranked
	// live backend (rendezvous order, skipping excluded members and
	// open breakers), chunks each group to BatchSize, and launches the
	// chunks. A chunk whose backend dies is re-dispatched with that
	// backend excluded — the rendezvous property guarantees only the
	// dead backend's cells move.
	var dispatch func(idxs []int, excluded map[string]bool)
	var run func(backend string, idxs []int, excluded map[string]bool)

	dispatch = func(idxs []int, excluded map[string]bool) {
		_, routeSpan := cl.tracer.StartSpan(ctx, "cluster.route",
			telemetry.Int("cells", len(idxs)), telemetry.Int("excluded", len(excluded)))
		defer routeSpan.End()
		groups := make(map[string][]int)
		for _, i := range idxs {
			key := routeKey(cl.seed, jobs[i])
			be := cl.router.RouteExcluding(key, excluded)
			if be == "" {
				fail(fmt.Errorf("cluster: no live backend for %s on %s (all %d excluded)",
					jobs[i].Bench.Name, jobs[i].CP, len(cl.clients)))
				return
			}
			// Prefer a backend whose breaker is ready; an open breaker
			// reroutes to the next rank without marking the member
			// excluded for good.
			if !cl.breakers[be].Ready() {
				ex := make(map[string]bool, len(excluded)+1)
				for k := range excluded {
					ex[k] = true
				}
				ex[be] = true
				if alt := cl.router.RouteExcluding(key, ex); alt != "" {
					routeSpan.Annotate(telemetry.String("breaker_reroute", be+"->"+alt))
					be = alt
				}
			}
			groups[be] = append(groups[be], i)
		}
		for be, g := range groups {
			routeSpan.Annotate(telemetry.String("backend", be), telemetry.Int("backend_cells", len(g)))
			for len(g) > 0 {
				n := cl.opts.BatchSize
				if n > len(g) {
					n = len(g)
				}
				chunk := g[:n]
				g = g[n:]
				wg.Add(1)
				go run(be, chunk, excluded)
			}
		}
	}

	run = func(backend string, idxs []int, excluded map[string]bool) {
		defer wg.Done()
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			fail(ctx.Err())
			return
		}
		err := cl.tryBatch(ctx, backend, idxs, jobs, out, excluded)
		<-sem
		if err == nil {
			return
		}
		if permanent(err) || ctx.Err() != nil {
			fail(err)
			return
		}
		// The backend is down (retries exhausted or breaker open): fail
		// its cells over to the next-ranked survivors.
		cl.failovers.Add(1)
		cl.attr.get(backend).failedOver.Add(1)
		_, foSpan := cl.tracer.StartSpan(ctx, "cluster.failover",
			telemetry.String("from", backend),
			telemetry.Int("cells", len(idxs)),
			telemetry.String("cause", err.Error()))
		cl.logger.WarnContext(ctx, "failover",
			slog.String("from", backend), slog.Int("cells", len(idxs)), slog.Any("cause", err))
		ex := make(map[string]bool, len(excluded)+1)
		for k := range excluded {
			ex[k] = true
		}
		ex[backend] = true
		if len(ex) >= len(cl.clients) {
			foSpan.End()
			fail(err)
			return
		}
		dispatch(idxs, ex)
		foSpan.End()
	}

	dispatch(seq(len(jobs)), nil)
	wg.Wait()

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, m := range out {
		if m == nil {
			return nil, fmt.Errorf("cluster: job %d (%s on %s) not measured",
				i, jobs[i].Bench.Name, jobs[i].CP)
		}
	}
	return out, nil
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// errBreakerOpen marks a batch skipped because its backend's breaker
// rejected traffic; the caller fails the cells over like any other
// transient backend failure.
type errBreakerOpen struct{ backend string }

func (e errBreakerOpen) Error() string {
	return "cluster: breaker open for " + e.backend
}

// tryBatch runs one chunk against one backend with retries and hedging,
// writing reconstructed measurements into out on success.
func (cl *Cluster) tryBatch(ctx context.Context, backend string, idxs []int, jobs []harness.Job, out []*harness.Measurement, excluded map[string]bool) error {
	req := &service.MeasureRequest{
		Seed:   &cl.seed,
		Detail: service.DetailFull,
		Cells:  make([]service.CellRequest, len(idxs)),
	}
	for i, idx := range idxs {
		req.Cells[i] = cellRequest(jobs[idx])
	}
	hedge := cl.hedgeTarget(backend, jobs[idxs[0]], excluded)

	var lastErr error
	for attempt := 0; attempt < cl.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			cl.retries.Add(1)
			cl.logger.InfoContext(ctx, "retry",
				slog.String("backend", backend), slog.Int("attempt", attempt+1),
				slog.Int("cells", len(idxs)), slog.Any("cause", lastErr))
			_, boSpan := cl.tracer.StartSpan(ctx, "cluster.backoff",
				telemetry.String("backend", backend), telemetry.Int("attempt", attempt+1))
			err := cl.backoff(ctx, attempt)
			boSpan.End()
			if err != nil {
				return err
			}
		}
		if !cl.breakers[backend].Ready() {
			_, brSpan := cl.tracer.StartSpan(ctx, "cluster.breaker_open",
				telemetry.String("backend", backend))
			brSpan.End()
			if lastErr != nil {
				return lastErr
			}
			return errBreakerOpen{backend}
		}
		cl.batchesSent.Add(1)
		attemptCtx, atSpan := cl.tracer.StartSpan(ctx, "cluster.attempt",
			telemetry.String("backend", backend),
			telemetry.Int("attempt", attempt+1),
			telemetry.Int("cells", len(idxs)))
		resp, winner, err := cl.measureOnce(attemptCtx, backend, hedge, req)
		if err != nil {
			atSpan.Annotate(telemetry.String("error", err.Error()))
			atSpan.End()
			if permanent(err) || ctx.Err() != nil {
				return err
			}
			lastErr = err
			continue
		}
		atSpan.Annotate(telemetry.String("winner", winner))
		atSpan.End()
		for i, idx := range idxs {
			m, err := cl.resolver.MeasurementFromCell(&resp.Cells[i])
			if err != nil {
				return err
			}
			out[idx] = m
		}
		cl.cellsDone.Add(int64(len(idxs)))
		return nil
	}
	return lastErr
}

// hedgeTarget picks the duplicate destination for a straggling batch:
// the batch's next-ranked backend (every cell in a chunk shares its
// first rank, so the representative job's second rank is the natural
// second home for the whole chunk). Members already excluded by
// failover are skipped — hedging to a backend known dead would waste
// the duplicate and buy back no tail latency.
func (cl *Cluster) hedgeTarget(primary string, j harness.Job, excluded map[string]bool) string {
	if cl.opts.HedgeDelay <= 0 || len(cl.clients) < 2 {
		return ""
	}
	for _, m := range cl.router.Rank(routeKey(cl.seed, j)) {
		if m != primary && !excluded[m] {
			return m
		}
	}
	return ""
}

// jitteredBackoff is the delay before retry attempt (1-based): an
// exponential base capped at max, with full jitter on the upper half so
// retry waves never synchronize across chunks or pullers while the
// exponential floor is preserved. Shared by the rendezvous coordinator
// and the work-stealing scheduler.
func jitteredBackoff(base, max time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// backoff sleeps the jittered exponential delay for the given attempt
// (1-based), or returns early with ctx's error.
func (cl *Cluster) backoff(ctx context.Context, attempt int) error {
	t := time.NewTimer(jitteredBackoff(cl.opts.BackoffBase, cl.opts.BackoffMax, attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Reference builds the Section 2.6 normalization table from cluster
// measurements — bit-identical to a local harness.Reference() at the
// same seed, because both feed BuildReference the same measurements in
// the same order.
func (cl *Cluster) Reference(ctx context.Context, workers int) (*harness.Reference, error) {
	return referenceVia(ctx, cl, workers)
}

// referenceVia builds the normalization table through any remote
// measurer (the rendezvous cluster or the work-stealing scheduler); the
// accumulation is keyed by cell identity, so it is independent of which
// backend measured what and in what order results arrived.
func referenceVia(ctx context.Context, src interface {
	MeasureBatch(context.Context, []harness.Job, int) ([]*harness.Measurement, error)
}, workers int) (*harness.Reference, error) {
	refs, err := harness.ReferenceCells()
	if err != nil {
		return nil, err
	}
	jobs := harness.GridJobs(refs, nil)
	ms, err := src.MeasureBatch(ctx, jobs, workers)
	if err != nil {
		return nil, err
	}
	byCell := make(map[string]*harness.Measurement, len(ms))
	for i, m := range ms {
		byCell[jobs[i].Bench.Name+"|"+jobs[i].CP.String()] = m
	}
	return harness.BuildReference(func(b *workload.Benchmark, cp proc.ConfiguredProcessor) (*harness.Measurement, error) {
		m, ok := byCell[b.Name+"|"+cp.String()]
		if !ok {
			return nil, fmt.Errorf("cluster: %s on %s missing from reference batch", b.Name, cp)
		}
		return m, nil
	})
}

// ProbeHealth hits every backend's /healthz once and feeds the
// breakers: an unhealthy or unreachable backend accumulates failures
// (tripping its breaker at the threshold), a healthy one closes its
// breaker — which is also how a recovered backend rejoins the rotation.
func (cl *Cluster) ProbeHealth(ctx context.Context) {
	probeBackends(ctx, cl.clients, cl.breakers)
}

// probeBackends probes every client's /healthz concurrently and feeds
// the matching breakers; shared by both coordinators.
func probeBackends(ctx context.Context, clients map[string]*Client, breakers map[string]*Breaker) {
	var wg sync.WaitGroup
	for be, c := range clients {
		wg.Add(1)
		go func(be string, c *Client) {
			defer wg.Done()
			if err := c.Healthz(ctx); err != nil && ctx.Err() == nil {
				breakers[be].Failure()
			} else if err == nil {
				breakers[be].Success()
			}
		}(be, c)
	}
	wg.Wait()
}

// StartProber probes health on the given interval until ctx is done.
func (cl *Cluster) StartProber(ctx context.Context, interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				cl.ProbeHealth(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Stats is the coordinator-side counter snapshot.
type Stats struct {
	Backends      []BackendStats `json:"backends"`
	BatchesSent   int64          `json:"batches_sent"`
	CellsMeasured int64          `json:"cells_measured"`
	Retries       int64          `json:"retries"`
	HedgesFired   int64          `json:"hedges_fired"`
	HedgeWins     int64          `json:"hedge_wins"`
	Failovers     int64          `json:"failovers"`
	BreakerOpens  int64          `json:"breaker_opens"`
}

// BackendStats is one backend's resilience state plus its measured
// request-latency distribution (from the coordinator's vantage point:
// queueing, network, and backend compute together).
type BackendStats struct {
	URL      string  `json:"url"`
	State    string  `json:"breaker_state"`
	Opens    int64   `json:"breaker_opens"`
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"latency_p50_ms"`
	P90Ms    float64 `json:"latency_p90_ms"`
	P99Ms    float64 `json:"latency_p99_ms"`

	// SLO attribution: resilience interventions charged against this
	// backend. HedgedAway/HedgeLosses/FailedOver are coordinator-side
	// (rendezvous cluster); StolenFrom/LeaseFailures are scheduler-side.
	HedgedAway    int64 `json:"hedged_away,omitempty"`
	HedgeLosses   int64 `json:"hedge_losses,omitempty"`
	FailedOver    int64 `json:"failed_over,omitempty"`
	StolenFrom    int64 `json:"stolen_from,omitempty"`
	LeaseFailures int64 `json:"lease_failures,omitempty"`
}

// Stats snapshots the cluster counters.
func (cl *Cluster) Stats() Stats {
	st := Stats{
		BatchesSent:   cl.batchesSent.Load(),
		CellsMeasured: cl.cellsDone.Load(),
		Retries:       cl.retries.Load(),
		HedgesFired:   cl.hedgesFired.Load(),
		HedgeWins:     cl.hedgeWins.Load(),
		Failovers:     cl.failovers.Load(),
	}
	for _, m := range cl.router.Members() {
		b := cl.breakers[m]
		opens := b.Opens()
		lat := cl.clients[m].lat.Summary()
		at := cl.attr.get(m)
		st.Backends = append(st.Backends, BackendStats{
			URL:         m,
			State:       b.State(),
			Opens:       opens,
			Requests:    lat.Count,
			P50Ms:       float64(lat.P50) / 1e6,
			P90Ms:       float64(lat.P90) / 1e6,
			P99Ms:       float64(lat.P99) / 1e6,
			HedgedAway:  at.hedgedAway.Load(),
			HedgeLosses: at.hedgeLosses.Load(),
			FailedOver:  at.failedOver.Load(),
		})
		st.BreakerOpens += opens
	}
	return st
}

// WriteMetrics renders the coordinator counters in the Prometheus text
// exposition format, the client-side sibling of powerperfd's /metricsz.
func (cl *Cluster) WriteMetrics(w io.Writer) {
	st := cl.Stats()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n" +
			name + " " + strconv.FormatInt(v, 10) + "\n")
	}
	counter("powerperf_cluster_batches_sent_total", "Measure batches sent to backends.", st.BatchesSent)
	counter("powerperf_cluster_cells_measured_total", "Cells measured successfully.", st.CellsMeasured)
	counter("powerperf_cluster_retries_total", "Batch retries after transient failures.", st.Retries)
	counter("powerperf_cluster_hedges_fired_total", "Straggling batches duplicated to a second backend.", st.HedgesFired)
	counter("powerperf_cluster_hedge_wins_total", "Hedged duplicates that answered first.", st.HedgeWins)
	counter("powerperf_cluster_failovers_total", "Chunks re-routed off a dead backend.", st.Failovers)
	counter("powerperf_cluster_breaker_opens_total", "Circuit breaker open transitions across backends.", st.BreakerOpens)
	name := "powerperf_cluster_breaker_state"
	b.WriteString("# HELP " + name + " Breaker state per backend (0 closed, 1 half-open, 2 open).\n# TYPE " + name + " gauge\n")
	for _, be := range st.Backends {
		v := 0
		switch be.State {
		case "half-open":
			v = 1
		case "open":
			v = 2
		}
		// PromQuote, not raw interpolation: a backend URL with a quote or
		// backslash must not corrupt the page (round-trip guard).
		b.WriteString(name + "{backend=" + telemetry.PromQuote(be.URL) + "} " + strconv.Itoa(v) + "\n")
	}
	// Per-backend SLO attribution: which member each intervention was
	// charged against.
	perBackend := func(name, help string, value func(BackendStats) int64) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n")
		for _, be := range st.Backends {
			b.WriteString(name + "{backend=" + telemetry.PromQuote(be.URL) + "} " +
				strconv.FormatInt(value(be), 10) + "\n")
		}
	}
	perBackend("powerperf_cluster_hedged_away_total",
		"Batches duplicated away because this primary straggled.",
		func(be BackendStats) int64 { return be.HedgedAway })
	perBackend("powerperf_cluster_hedge_losses_total",
		"Hedge duplicates that answered before this primary.",
		func(be BackendStats) int64 { return be.HedgeLosses })
	perBackend("powerperf_cluster_failed_over_total",
		"Chunks re-routed off this backend after it died.",
		func(be BackendStats) int64 { return be.FailedOver })
	// The process-global histogram families follow the counters: in a
	// coordinator process that includes the per-backend request-latency
	// distributions the clients record.
	telemetry.Default.WritePrometheus(&b)
	_, _ = io.WriteString(w, b.String())
}
