package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"log/slog"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// SchedulerOptions configures a Scheduler. The zero value selects sane
// defaults.
type SchedulerOptions struct {
	// Seed is the study seed sent with every measure request; nil
	// defaults to 42 (a pointer keeps seed 0 usable).
	Seed *int64
	// LeaseCells is how many consecutive grid cells one lease covers;
	// <= 0 selects 16. Leases slice the job list in order, so a lease
	// shares a configuration's benchmark row — the same locality the
	// local harness's scheduling blocks exploit.
	LeaseCells int
	// LeaseExpiry is how long a lease may go without delivering a cell
	// before another backend may steal it; <= 0 selects 2s. Streaming
	// makes progress observable per cell, so expiry measures stalled
	// delivery, not total lease duration — a slow-but-moving backend is
	// not stolen from.
	LeaseExpiry time.Duration
	// MaxLeaseHolders bounds how many backends may hold one lease at
	// once (the original plus thieves); <= 0 selects 2. First result
	// wins per cell; the loser's duplicates are discarded.
	MaxLeaseHolders int
	// MaxLeaseFailures is how many failed dispatches one lease absorbs
	// before the run is declared failed; <= 0 selects 32. It bounds the
	// retry loop when the whole fleet is down.
	MaxLeaseFailures int
	// PullersPerBackend is how many concurrent lease streams each
	// backend serves when MeasureBatch is called with workers <= 0;
	// <= 0 selects 2.
	PullersPerBackend int
	// RequestTimeout is the per-stream deadline; <= 0 selects 5m. The
	// stream's keep-alives do not extend it — it bounds one lease
	// end-to-end.
	RequestTimeout time.Duration
	// BreakerThreshold and BreakerCooldown shape the per-backend circuit
	// breaker; they default to 3 and 5s. A dead backend's pullers idle
	// on the open breaker instead of hammering it, and the half-open
	// trial is how a restarted backend rejoins.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// a puller sleeps after consecutive dispatch failures; they default
	// to 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HTTPClient overrides the transport; nil selects a dedicated client
	// with connection pooling sized to the puller count.
	HTTPClient *http.Client
	// Tracer records scheduler spans (leases, steals, re-dispatches);
	// nil disables capture. Tracing never changes the dataset's bytes.
	Tracer *telemetry.Tracer
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.Seed == nil {
		s := int64(42)
		o.Seed = &s
	}
	if o.LeaseCells <= 0 {
		o.LeaseCells = 16
	}
	if o.LeaseExpiry <= 0 {
		o.LeaseExpiry = 2 * time.Second
	}
	if o.MaxLeaseHolders <= 0 {
		o.MaxLeaseHolders = 2
	}
	if o.MaxLeaseFailures <= 0 {
		o.MaxLeaseFailures = 32
	}
	if o.PullersPerBackend <= 0 {
		o.PullersPerBackend = 2
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Minute
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	return o
}

// Scheduler is the pull-based work-stealing coordinator: a run's cells
// are sliced into leases, per-backend pullers pull leases from the
// shared queue as fast as their backend completes them, and results
// stream back cell-by-cell over NDJSON (/v1/measure?stream=1). A lease
// that stalls past LeaseExpiry is stolen by an idle backend — first
// result per cell wins, duplicates are discarded — so a straggler or a
// mid-stream death costs only the unfinished remainder of its lease,
// never completed cells.
//
// Where Cluster pushes batches to rendezvous-chosen homes (maximizing
// backend cache reuse across runs), the Scheduler lets backend speed
// set the division of labor: a 10x-slower backend simply pulls 10x
// fewer leases. Both satisfy the harness.MeasureBatch contract and
// return bit-identical results — scheduling is invisible under the
// determinism contract.
type Scheduler struct {
	opts     SchedulerOptions
	seed     int64
	backends []string
	clients  map[string]*Client
	breakers map[string]*Breaker
	resolver *Resolver
	tracer   *telemetry.Tracer
	logger   *slog.Logger

	leasesIssued  atomic.Int64
	steals        atomic.Int64
	redispatches  atomic.Int64
	cellsDone     atomic.Int64
	cellsDup      atomic.Int64
	cellsReq      atomic.Int64
	truncations   atomic.Int64
	dispatchFails atomic.Int64
	attr          *attribution
}

// NewScheduler builds a work-stealing scheduler over the given backend
// base URLs.
func NewScheduler(backends []string, opts SchedulerOptions) (*Scheduler, error) {
	// The router is used only to normalize and dedupe the member list —
	// the scheduler does not route by key.
	members := NewRouter(backends).Members()
	if len(members) == 0 {
		return nil, errors.New("cluster: no backends")
	}
	opts = opts.withDefaults()
	hc := opts.HTTPClient
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = opts.PullersPerBackend + 1
		hc = &http.Client{Transport: tr}
	}
	s := &Scheduler{
		opts:     opts,
		seed:     *opts.Seed,
		backends: members,
		clients:  make(map[string]*Client, len(members)),
		breakers: make(map[string]*Breaker, len(members)),
		resolver: NewResolver(),
		tracer:   opts.Tracer,
		logger:   telemetry.Logger("scheduler"),
		attr:     newAttribution(members),
	}
	for _, m := range members {
		s.clients[m] = NewClient(m, hc, opts.RequestTimeout)
		s.breakers[m] = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	return s, nil
}

// Backends returns the member set in sorted order.
func (s *Scheduler) Backends() []string { return s.backends }

// Tracer returns the scheduler's span recorder (nil when disabled).
func (s *Scheduler) Tracer() *telemetry.Tracer { return s.tracer }

// lease is one slice of a run's cells. All fields are guarded by the
// run's mutex.
type lease struct {
	id         int
	idxs       []int // job indices covered, in job order
	remaining  int   // cells of this lease not yet delivered
	holders    int   // backends currently streaming this lease
	holderOf   map[string]int
	touched    time.Time // last dispatch or cell delivery; expiry base
	dispatched bool      // has ever been dispatched (first vs re-dispatch)
	failures   int
}

// run is the per-MeasureBatch state.
type run struct {
	s      *Scheduler
	jobs   []harness.Job
	out    []*harness.Measurement
	cancel context.CancelFunc

	mu        sync.Mutex
	done      []bool
	doneCount int
	leases    []*lease
	err       error
	wake      chan struct{} // closed and replaced to wake idle pullers
}

func newRun(s *Scheduler, jobs []harness.Job, cancel context.CancelFunc) *run {
	r := &run{
		s:      s,
		jobs:   jobs,
		out:    make([]*harness.Measurement, len(jobs)),
		cancel: cancel,
		done:   make([]bool, len(jobs)),
		wake:   make(chan struct{}),
	}
	for lo := 0; lo < len(jobs); lo += s.opts.LeaseCells {
		hi := lo + s.opts.LeaseCells
		if hi > len(jobs) {
			hi = len(jobs)
		}
		idxs := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idxs = append(idxs, i)
		}
		r.leases = append(r.leases, &lease{
			id: len(r.leases), idxs: idxs, remaining: len(idxs),
			holderOf: make(map[string]int),
		})
	}
	return r
}

func (r *run) finished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doneCount == len(r.jobs) || r.err != nil
}

// notifyLocked wakes every puller waiting in wait(); callers hold r.mu.
func (r *run) notifyLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

// wait blocks until woken, until the poll interval elapses (so expired
// leases are noticed without a dedicated timer per lease), or until ctx
// ends; it reports whether the puller should keep going.
func (r *run) wait(ctx context.Context) bool {
	r.mu.Lock()
	ch := r.wake
	r.mu.Unlock()
	poll := r.s.opts.LeaseExpiry / 4
	if poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	t := time.NewTimer(poll)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// sleep pauses for d or until ctx ends, reporting whether to continue.
func (r *run) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// acquire hands backend its next lease: the lowest-id idle incomplete
// lease if any (the front-to-back sweep keeps early blocks finishing
// first), otherwise the stalest in-flight lease past expiry that the
// backend is not already holding — a steal. Returns the lease, the
// job indices still undone at acquisition, and the dispatch kind
// ("first" initial dispatch, "steal" expired-lease takeover,
// "redispatch" re-issue after the previous holder released without
// finishing) — the lease span carries it so trace analytics can
// attribute critical-path time to steal/re-dispatch stages. Lease is
// nil when nothing is available right now.
func (r *run) acquire(backend string) (*lease, []int, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.doneCount == len(r.jobs) || r.err != nil {
		return nil, nil, ""
	}
	now := time.Now()
	var pick *lease
	for _, l := range r.leases {
		if l.remaining > 0 && l.holders == 0 {
			pick = l
			break
		}
	}
	steal := false
	if pick == nil {
		for _, l := range r.leases {
			if l.remaining == 0 || l.holders == 0 || l.holders >= r.s.opts.MaxLeaseHolders {
				continue
			}
			if l.holderOf[backend] > 0 {
				continue
			}
			if now.Sub(l.touched) < r.s.opts.LeaseExpiry {
				continue
			}
			if pick == nil || l.touched.Before(pick.touched) {
				pick = l
			}
		}
		steal = pick != nil
	}
	if pick == nil {
		return nil, nil, ""
	}
	redispatch := pick.dispatched && !steal
	pick.holders++
	pick.holderOf[backend]++
	pick.touched = now
	pick.dispatched = true
	idxs := make([]int, 0, pick.remaining)
	for _, i := range pick.idxs {
		if !r.done[i] {
			idxs = append(idxs, i)
		}
	}
	r.s.leasesIssued.Add(1)
	if steal {
		r.s.steals.Add(1)
		// Charge the steal to the stalled holder(s) being covered for —
		// the thief is doing the fleet a favor, the victim ate the
		// latency budget. holderOf cannot include the thief (filtered
		// above), so every key is a victim.
		for victim, n := range pick.holderOf {
			if victim != backend && n > 0 {
				r.s.attr.get(victim).stolenFrom.Add(1)
			}
		}
	} else if redispatch {
		r.s.redispatches.Add(1)
	}
	kind := "first"
	switch {
	case steal:
		kind = "steal"
	case redispatch:
		kind = "redispatch"
	}
	return pick, idxs, kind
}

// deliver records one measured cell. The first delivery of an index
// wins; a duplicate (from a stolen lease's loser) reports false and is
// discarded. Delivery refreshes the lease's expiry clock — a streaming
// backend that keeps producing is never stolen from.
func (r *run) deliver(l *lease, idx int, m *harness.Measurement) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.touched = time.Now()
	if r.done[idx] {
		return false
	}
	r.done[idx] = true
	r.out[idx] = m
	r.doneCount++
	l.remaining--
	if r.doneCount == len(r.jobs) {
		// Complete: wake idle pullers so they exit, and cancel the run
		// context so in-flight duplicate streams abort instead of
		// finishing work nobody needs.
		r.notifyLocked()
		r.cancel()
	} else if l.remaining == 0 {
		r.notifyLocked()
	}
	return true
}

// release returns a holder's claim on a lease after its stream ended.
// A failed dispatch counts against the lease; past MaxLeaseFailures the
// run is poisoned (the fleet cannot measure these cells). An incomplete
// lease with no remaining holders goes back to idle and pullers are
// woken to claim it.
func (r *run) release(l *lease, backend string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.holders--
	l.holderOf[backend]--
	if l.holderOf[backend] <= 0 {
		delete(l.holderOf, backend)
	}
	if err != nil {
		l.failures++
		r.s.attr.get(backend).leaseFails.Add(1)
		if l.remaining > 0 && l.failures >= r.s.opts.MaxLeaseFailures && r.err == nil {
			r.err = fmt.Errorf("cluster: lease %d failed %d dispatches, giving up: %w", l.id, l.failures, err)
			r.cancel()
			r.notifyLocked()
			return
		}
	}
	if l.remaining > 0 && l.holders == 0 {
		r.notifyLocked()
	}
}

// fail poisons the run with its first permanent error.
func (r *run) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.notifyLocked()
	r.mu.Unlock()
	r.cancel()
}

// MeasureBatch measures jobs across the fleet by work-stealing and
// returns them in job order, satisfying the harness.MeasureBatch
// contract: results are bit-identical to a local harness run (the
// determinism contract makes stolen and duplicated cells exact), the
// first permanent error cancels the batch, and ctx aborts promptly.
// workers <= 0 selects PullersPerBackend streams per backend; workers
// > 0 caps the fleet-wide stream count, distributed round-robin.
func (s *Scheduler) MeasureBatch(ctx context.Context, jobs []harness.Job, workers int) ([]*harness.Measurement, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, span := s.tracer.StartSpan(ctx, "scheduler.MeasureBatch",
		telemetry.Int("jobs", len(jobs)), telemetry.Int("workers", workers))
	defer span.End()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := newRun(s, jobs, cancel)

	pullers := make(map[string]int, len(s.backends))
	if workers > 0 {
		for i := 0; i < workers; i++ {
			pullers[s.backends[i%len(s.backends)]]++
		}
	} else {
		for _, be := range s.backends {
			pullers[be] = s.opts.PullersPerBackend
		}
	}

	var wg sync.WaitGroup
	for be, n := range pullers {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(be string) {
				defer wg.Done()
				s.pull(runCtx, r, be)
			}(be)
		}
	}
	wg.Wait()

	r.mu.Lock()
	err := r.err
	doneCount := r.doneCount
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// The parent context (not the run context — completion cancels that
	// one by design) decides whether an incomplete run was an abort.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if doneCount != len(jobs) {
		return nil, fmt.Errorf("cluster: scheduler finished with %d of %d cells measured", doneCount, len(jobs))
	}
	return r.out, nil
}

// pull is one backend puller: claim a lease, stream it, release,
// repeat. Transient failures back off exponentially per consecutive
// failure; an open breaker idles the puller through the cooldown.
func (s *Scheduler) pull(ctx context.Context, r *run, backend string) {
	c := s.clients[backend]
	br := s.breakers[backend]
	consecFails := 0
	for {
		if ctx.Err() != nil || r.finished() {
			return
		}
		if !br.Ready() {
			if !r.wait(ctx) {
				return
			}
			continue
		}
		l, idxs, kind := r.acquire(backend)
		if l == nil {
			if !r.wait(ctx) {
				return
			}
			continue
		}
		err := s.streamLease(ctx, c, r, l, idxs, kind)
		r.release(l, backend, err)
		if err == nil {
			br.Success()
			consecFails = 0
			continue
		}
		if ctx.Err() != nil {
			// Run completion or abort canceled the stream mid-flight;
			// nothing to record against the backend.
			return
		}
		if permanent(err) {
			r.fail(err)
			return
		}
		br.Failure()
		s.dispatchFails.Add(1)
		if errors.Is(err, ErrStreamTruncated) {
			s.truncations.Add(1)
		}
		consecFails++
		s.logger.WarnContext(ctx, "lease dispatch failed",
			slog.String("backend", backend), slog.Int("lease", l.id),
			slog.Int("consecutive", consecFails), slog.Any("cause", err))
		if !r.sleep(ctx, jitteredBackoff(s.opts.BackoffBase, s.opts.BackoffMax, consecFails)) {
			return
		}
	}
}

// streamLease streams one lease's undone cells from one backend,
// delivering each cell as its line arrives. Completed cells survive a
// failure partway — only the remainder is re-dispatched.
func (s *Scheduler) streamLease(ctx context.Context, c *Client, r *run, l *lease, idxs []int, kind string) error {
	if len(idxs) == 0 {
		return nil
	}
	req := &service.MeasureRequest{
		Seed:   &s.seed,
		Detail: service.DetailFull,
		Lane:   service.LaneBulk,
		Cells:  make([]service.CellRequest, len(idxs)),
	}
	for i, idx := range idxs {
		req.Cells[i] = cellRequest(r.jobs[idx])
	}
	s.cellsReq.Add(int64(len(idxs)))
	ctx, span := s.tracer.StartSpan(ctx, "scheduler.lease",
		telemetry.String("backend", c.Base()), telemetry.String("kind", kind),
		telemetry.Int("lease", l.id), telemetry.Int("cells", len(idxs)))
	defer span.End()
	return c.MeasureStream(ctx, req, func(sc *service.StreamCell) error {
		m, err := s.resolver.MeasurementFromCell(&sc.Result)
		if err != nil {
			return err
		}
		if r.deliver(l, idxs[sc.Index], m) {
			s.cellsDone.Add(1)
		} else {
			s.cellsDup.Add(1)
		}
		return nil
	})
}

// Reference builds the Section 2.6 normalization table from scheduled
// measurements — bit-identical to a local harness.Reference() at the
// same seed, because both feed BuildReference the same measurements.
func (s *Scheduler) Reference(ctx context.Context, workers int) (*harness.Reference, error) {
	return referenceVia(ctx, s, workers)
}

// ProbeHealth hits every backend's /healthz once and feeds the
// breakers, exactly like Cluster.ProbeHealth: failures accumulate
// toward the breaker threshold, a healthy answer closes the breaker
// and readmits a recovered backend's pullers.
func (s *Scheduler) ProbeHealth(ctx context.Context) {
	probeBackends(ctx, s.clients, s.breakers)
}

// StartProber probes health on the given interval until ctx is done.
func (s *Scheduler) StartProber(ctx context.Context, interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.ProbeHealth(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// SchedulerStats is the scheduler-side counter snapshot.
type SchedulerStats struct {
	Backends          []BackendStats `json:"backends"`
	LeasesIssued      int64          `json:"leases_issued"`
	Steals            int64          `json:"steals"`
	Redispatches      int64          `json:"redispatches"`
	CellsMeasured     int64          `json:"cells_measured"`
	CellsRequested    int64          `json:"cells_requested"`
	CellsDiscarded    int64          `json:"cells_discarded"`
	StreamTruncations int64          `json:"stream_truncations"`
	DispatchFailures  int64          `json:"dispatch_failures"`
	BreakerOpens      int64          `json:"breaker_opens"`
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		LeasesIssued:      s.leasesIssued.Load(),
		Steals:            s.steals.Load(),
		Redispatches:      s.redispatches.Load(),
		CellsMeasured:     s.cellsDone.Load(),
		CellsRequested:    s.cellsReq.Load(),
		CellsDiscarded:    s.cellsDup.Load(),
		StreamTruncations: s.truncations.Load(),
		DispatchFailures:  s.dispatchFails.Load(),
	}
	for _, m := range s.backends {
		b := s.breakers[m]
		opens := b.Opens()
		lat := s.clients[m].lat.Summary()
		at := s.attr.get(m)
		st.Backends = append(st.Backends, BackendStats{
			URL:           m,
			State:         b.State(),
			Opens:         opens,
			Requests:      lat.Count,
			P50Ms:         float64(lat.P50) / 1e6,
			P90Ms:         float64(lat.P90) / 1e6,
			P99Ms:         float64(lat.P99) / 1e6,
			StolenFrom:    at.stolenFrom.Load(),
			LeaseFailures: at.leaseFails.Load(),
		})
		st.BreakerOpens += opens
	}
	return st
}

// WriteMetrics renders the scheduler counters in the Prometheus text
// exposition format, the work-stealing sibling of Cluster.WriteMetrics.
func (s *Scheduler) WriteMetrics(w io.Writer) {
	st := s.Stats()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n" +
			name + " " + strconv.FormatInt(v, 10) + "\n")
	}
	counter("powerperf_sched_leases_issued_total", "Leases dispatched to backends (first dispatches, re-dispatches, and steals).", st.LeasesIssued)
	counter("powerperf_sched_steals_total", "Leases stolen from a stalled holder by an idle backend.", st.Steals)
	counter("powerperf_sched_redispatches_total", "Leases re-dispatched after a failed holder released them.", st.Redispatches)
	counter("powerperf_sched_cells_measured_total", "Cells delivered first (kept).", st.CellsMeasured)
	counter("powerperf_sched_cells_requested_total", "Cells requested across all dispatches (including duplicated work).", st.CellsRequested)
	counter("powerperf_sched_cells_discarded_total", "Duplicate cell deliveries discarded (first result won).", st.CellsDiscarded)
	counter("powerperf_sched_stream_truncations_total", "Streams severed before their terminal line.", st.StreamTruncations)
	counter("powerperf_sched_dispatch_failures_total", "Lease dispatches that failed for any transient reason.", st.DispatchFailures)
	counter("powerperf_sched_breaker_opens_total", "Circuit breaker open transitions across backends.", st.BreakerOpens)
	name := "powerperf_sched_breaker_state"
	b.WriteString("# HELP " + name + " Breaker state per backend (0 closed, 1 half-open, 2 open).\n# TYPE " + name + " gauge\n")
	for _, be := range st.Backends {
		v := 0
		switch be.State {
		case "half-open":
			v = 1
		case "open":
			v = 2
		}
		b.WriteString(name + "{backend=" + telemetry.PromQuote(be.URL) + "} " + strconv.Itoa(v) + "\n")
	}
	// Per-backend SLO attribution: which stalled or failed member each
	// intervention covered for.
	perBackend := func(name, help string, value func(BackendStats) int64) {
		b.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " counter\n")
		for _, be := range st.Backends {
			b.WriteString(name + "{backend=" + telemetry.PromQuote(be.URL) + "} " +
				strconv.FormatInt(value(be), 10) + "\n")
		}
	}
	perBackend("powerperf_sched_stolen_from_total",
		"Leases stolen from this stalled holder.",
		func(be BackendStats) int64 { return be.StolenFrom })
	perBackend("powerperf_sched_lease_failures_total",
		"Lease dispatches this holder failed.",
		func(be BackendStats) int64 { return be.LeaseFailures })
	telemetry.Default.WritePrometheus(&b)
	_, _ = io.WriteString(w, b.String())
}
