package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// TestCoordinatorTraceStitchesAcrossBackends is the observability
// acceptance test: a 2-backend study batch with one injected backend
// failure produces a single coordinator-side trace containing the
// batch root, routing, per-attempt spans, and at least one retry
// (backoff) span — and each backend that served requests retains
// server-side spans under the same trace id, parented to coordinator
// attempt spans, fetchable from its /v1/traces endpoint.
func TestCoordinatorTraceStitchesAcrossBackends(t *testing.T) {
	var failOnce atomic.Bool
	failOnce.Store(true)
	hooks := &service.Hooks{BeforeMeasure: func(seed int64, bench, processor string) error {
		if failOnce.CompareAndSwap(true, false) {
			return fmt.Errorf("injected fault: %s on %s", bench, processor)
		}
		return nil
	}}
	_, ts1, _ := newBackend(t, service.Options{Seed: 42, Hooks: hooks})
	_, ts2, _ := newBackend(t, service.Options{Seed: 42})

	tr := telemetry.NewTracer(4096)
	cl, err := New([]string{ts1.URL, ts2.URL}, Options{Seed: seedPtr(42), Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	jobs := stockJobs(t, 6)
	if _, err := cl.MeasureBatch(context.Background(), jobs, 0); err != nil {
		t.Fatal(err)
	}

	// Coordinator side: one trace rooted at cluster.MeasureBatch holding
	// every decision span.
	spans := tr.Snapshot()
	byName := map[string]int{}
	attemptIDs := map[string]bool{}
	var trace telemetry.TraceID
	for _, s := range spans {
		byName[s.Name]++
		switch s.Name {
		case "cluster.MeasureBatch":
			trace = s.Trace
		case "cluster.attempt":
			attemptIDs[s.ID.String()] = true
		}
	}
	if byName["cluster.MeasureBatch"] != 1 {
		t.Fatalf("want exactly one batch root span, got %d (spans: %v)", byName["cluster.MeasureBatch"], byName)
	}
	if byName["cluster.route"] == 0 || byName["cluster.attempt"] == 0 {
		t.Fatalf("missing routing/attempt spans: %v", byName)
	}
	if byName["cluster.backoff"] == 0 {
		t.Fatalf("injected fault produced no retry (cluster.backoff) span: %v", byName)
	}
	if st := cl.Stats(); st.Retries == 0 {
		t.Fatalf("stats recorded no retries: %+v", st)
	}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %s is in trace %s, want all coordinator spans in %s", s.Name, s.Trace, trace)
		}
	}

	// Backend side: each backend that served requests retains spans under
	// the coordinator's trace id, parented to a coordinator attempt span.
	served := 0
	for _, url := range []string{ts1.URL, ts2.URL} {
		events := fetchTrace(t, url, trace)
		if len(events) == 0 {
			continue
		}
		served++
		for _, ev := range events {
			args := ev["args"].(map[string]any)
			if args["trace_id"] != trace.String() {
				t.Fatalf("backend %s returned a span outside the filter: %v", url, ev)
			}
			if ev["name"] == "http.measure" && !attemptIDs[fmt.Sprint(args["parent_id"])] {
				t.Fatalf("backend %s http.measure span parent %v is not a coordinator attempt span",
					url, args["parent_id"])
			}
		}
		names := make([]string, 0, len(events))
		for _, ev := range events {
			names = append(names, ev["name"].(string))
		}
		joined := strings.Join(names, " ")
		if !strings.Contains(joined, "http.measure") {
			t.Fatalf("backend %s trace has no http.measure span: %v", url, names)
		}
	}
	if served == 0 {
		t.Fatal("no backend retained spans for the coordinator's trace")
	}

	// Per-backend latency distributions surface in Stats once requests
	// have flowed (satellite: client histograms).
	st := cl.Stats()
	sawRequests := false
	for _, be := range st.Backends {
		if be.Requests > 0 {
			sawRequests = true
			if be.P50Ms <= 0 || be.P99Ms < be.P50Ms {
				t.Fatalf("backend %s latency summary malformed: %+v", be.URL, be)
			}
		}
	}
	if !sawRequests {
		t.Fatalf("no backend recorded request latency: %+v", st.Backends)
	}
}

// TestWriteMetricsLintsClean lints the coordinator's Prometheus page —
// counters, breaker gauges, and the appended histogram families — with
// the same linter that guards powerperfd's /metricsz.
func TestWriteMetricsLintsClean(t *testing.T) {
	_, ts, _ := newBackend(t, service.Options{Seed: 42})
	cl, err := New([]string{ts.URL}, Options{Seed: seedPtr(42)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MeasureBatch(context.Background(), stockJobs(t, 1)[:3], 0); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	cl.WriteMetrics(&buf)
	text := buf.String()
	if problems := telemetry.LintPrometheus(text); len(problems) != 0 {
		t.Fatalf("WriteMetrics fails Prometheus lint:\n%s\n--- page ---\n%s",
			strings.Join(problems, "\n"), text)
	}
	if !strings.Contains(text, "powerperf_cluster_backend_request_seconds_bucket") {
		t.Fatal("WriteMetrics missing the per-backend request latency family")
	}
}

func fetchTrace(t *testing.T, baseURL string, trace telemetry.TraceID) []map[string]any {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/traces?trace=" + trace.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces from %s: %d %s", baseURL, resp.StatusCode, body)
	}
	var events []map[string]any
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("backend trace is not valid JSON: %v\n%s", err, body)
	}
	return events
}

// TestClientSetsUserAgentAndPropagatesHeaders pins the wire contract:
// every coordinator request identifies itself and carries the active
// span's trace headers.
func TestClientSetsUserAgentAndPropagatesHeaders(t *testing.T) {
	var gotUA, gotTrace, gotParent atomic.Value
	srv := service.NewServer(service.Options{Seed: 42})
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/measure" {
			gotUA.Store(r.Header.Get("User-Agent"))
			gotTrace.Store(r.Header.Get(telemetry.HeaderTraceID))
			gotParent.Store(r.Header.Get(telemetry.HeaderParentSpan))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	tr := telemetry.NewTracer(64)
	cl, err := New([]string{ts.URL}, Options{Seed: seedPtr(42), Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MeasureBatch(context.Background(), stockJobs(t, 1)[:2], 0); err != nil {
		t.Fatal(err)
	}

	// The UA carries the version plus a build token (commit; go version)
	// so backend logs can attribute traffic to an exact binary.
	wantUA := "powerperf-cluster/" + Version + " " + telemetry.BuildInfo().UserAgentToken()
	if ua, _ := gotUA.Load().(string); ua != wantUA {
		t.Fatalf("User-Agent %q, want %q", ua, wantUA)
	}
	traceHdr, _ := gotTrace.Load().(string)
	parentHdr, _ := gotParent.Load().(string)
	if traceHdr == "" || parentHdr == "" {
		t.Fatalf("trace headers not propagated: trace=%q parent=%q", traceHdr, parentHdr)
	}
	spans := tr.Snapshot()
	ok := false
	for _, s := range spans {
		if s.Trace.String() == traceHdr && s.Name == "cluster.attempt" && s.ID.String() == parentHdr {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("propagated headers (trace=%s parent=%s) do not name a coordinator attempt span", traceHdr, parentHdr)
	}
}
