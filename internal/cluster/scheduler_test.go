package cluster

import (
	"bytes"
	"context"
	"crypto/md5"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaoshttp"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/service"
)

// chaosBackend is a powerperfd behind a fault-injecting proxy; the
// scheduler talks only to the proxy.
func chaosBackend(t *testing.T, sopts service.Options, copts chaoshttp.Options) (*chaoshttp.Proxy, *httptest.Server) {
	t.Helper()
	srv := service.NewServer(sopts)
	backend := httptest.NewServer(srv.Handler())
	t.Cleanup(backend.Close)
	p := chaoshttp.New(backend.URL, copts)
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}

// TestSchedulerMatchesLocalHarness is the scheduler's contract test: a
// single-backend work-stealing run returns measurements deeply equal
// to a local harness at the same seed.
func TestSchedulerMatchesLocalHarness(t *testing.T) {
	srv := service.NewServer(service.Options{Seed: 42})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	s, err := NewScheduler([]string{ts.URL}, SchedulerOptions{Seed: seedPtr(42), LeaseCells: 5})
	if err != nil {
		t.Fatal(err)
	}
	jobs := stockJobs(t, 2)
	remote, err := s.MeasureBatch(context.Background(), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}

	h, err := harness.New(42)
	if err != nil {
		t.Fatal(err)
	}
	local, err := h.MeasureBatch(context.Background(), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if !reflect.DeepEqual(remote[i], local[i]) {
			t.Fatalf("job %d (%s on %s): scheduled measurement differs from local",
				i, jobs[i].Bench.Name, jobs[i].CP)
		}
	}
	st := s.Stats()
	if st.CellsMeasured != int64(len(jobs)) {
		t.Fatalf("cells_measured = %d, want %d", st.CellsMeasured, len(jobs))
	}
	if st.LeasesIssued < int64(len(jobs)/5) {
		t.Fatalf("leases_issued = %d, want >= %d", st.LeasesIssued, len(jobs)/5)
	}
}

// TestSchedulerStudyByteIdenticalUnderChaos is the acceptance test:
// three backends — one killed mid-study, one a 10x straggler (every
// response chunk delayed by its chaos proxy), one randomly truncating
// streams — and the work-stealing study still produces CSVs byte-
// identical to the committed seed-42 dataset. Completed cells are
// never re-run: a re-dispatched or stolen lease requests only the
// cells not yet delivered.
func TestSchedulerStudyByteIdenticalUnderChaos(t *testing.T) {
	var victim *chaoshttp.Proxy
	var victimFront *httptest.Server
	var victimCells atomic.Int64
	killAt := int64(150)
	hooks := &service.Hooks{BeforeMeasure: func(int64, string, string) error {
		if victimCells.Add(1) == killAt {
			victim.Kill()
			victimFront.CloseClientConnections()
		}
		return nil
	}}

	p0, f0 := chaosBackend(t, service.Options{Seed: 42, Hooks: hooks}, chaoshttp.Options{Seed: 1})
	victim, victimFront = p0, f0
	// The straggler: compute runs at full speed but every response chunk
	// crawls out — the shape of a backend with a saturated uplink.
	_, f1 := chaosBackend(t, service.Options{Seed: 42}, chaoshttp.Options{Seed: 2, ChunkDelay: 2 * time.Millisecond})
	// The flaky one: ~5% of responses are severed mid-chunk.
	p2, f2 := chaosBackend(t, service.Options{Seed: 42}, chaoshttp.Options{Seed: 3, TruncateProb: 0.05})

	s, err := NewScheduler([]string{f0.URL, f1.URL, f2.URL}, SchedulerOptions{
		Seed:             seedPtr(42),
		LeaseCells:       32,
		LeaseExpiry:      150 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		MaxLeaseFailures: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	ref, err := s.Reference(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mbuf, abuf bytes.Buffer
	if err := experiments.StreamMeasurementsCSVFrom(ctx, s, ref, nil, &mbuf, 0); err != nil {
		t.Fatal(err)
	}
	if err := experiments.StreamAggregatesCSVFrom(ctx, s, ref, nil, &abuf, 0); err != nil {
		t.Fatal(err)
	}

	if !victim.Dead() {
		t.Fatalf("victim backend was never killed (computed %d cells, kill at %d)", victimCells.Load(), killAt)
	}

	for file, got := range map[string][]byte{
		"measurements.csv": mbuf.Bytes(),
		"aggregates.csv":   abuf.Bytes(),
	} {
		want, err := os.ReadFile(filepath.Join("..", "..", "dataset", file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: scheduled bytes differ from committed dataset/%s (%d vs %d bytes)",
				file, file, len(got), len(want))
		}
	}

	st := s.Stats()
	if st.DispatchFailures == 0 {
		t.Errorf("expected dispatch failures after the mid-study kill, got 0; stats %+v", st)
	}
	if st.Redispatches+st.Steals == 0 {
		t.Errorf("expected the killed backend's leases to be re-dispatched or stolen; stats %+v", st)
	}
	if pst := p2.Stats(); pst.Truncated == 0 {
		t.Logf("note: the truncating proxy never fired (%+v)", pst)
	} else if st.StreamTruncations == 0 {
		t.Errorf("proxy truncated %d streams but the scheduler counted 0", p2.Stats().Truncated)
	}
	// No wholesale re-running: duplicated work is bounded by the
	// re-dispatched remainders and concurrent steals, nowhere near a
	// second pass over the grid.
	if st.CellsRequested >= 2*st.CellsMeasured {
		t.Errorf("cells_requested = %d vs %d measured: completed cells are being re-run",
			st.CellsRequested, st.CellsMeasured)
	}

	var metrics bytes.Buffer
	s.WriteMetrics(&metrics)
	for _, want := range []string{
		"powerperf_sched_leases_issued_total",
		"powerperf_sched_steals_total",
		"powerperf_sched_cells_discarded_total",
		"powerperf_sched_stream_truncations_total",
		"powerperf_sched_breaker_opens_total",
	} {
		if !bytes.Contains(metrics.Bytes(), []byte(want)) {
			t.Errorf("scheduler metrics missing %s", want)
		}
	}
}

// TestSchedulerStudyCSVProperty is the generative determinism suite:
// across randomized backend counts, lease sizes, puller counts, and
// seeded chaos schedules (drops, truncations, chunk delays, mid-run
// kills), the scheduler's CSVs must be md5-identical to a local serial
// run at the same seed. The scenario battery is itself seeded, so a
// failure replays exactly.
func TestSchedulerStudyCSVProperty(t *testing.T) {
	scenarios := 50
	if testing.Short() {
		scenarios = 12
	}
	rng := rand.New(rand.NewSource(0xC0FFEE))
	seeds := []int64{0, 1, 2, 42}

	// One real backend fleet serves every scenario: the measure seed
	// travels in each request, and the shared cache keeps repeated
	// scenarios cheap, exactly as a long-lived fleet would.
	var backendURLs []string
	for i := 0; i < 4; i++ {
		srv := service.NewServer(service.Options{Seed: 42})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		backendURLs = append(backendURLs, ts.URL)
	}

	type key struct {
		seed int64
		cfgs int
	}
	localM := map[key]string{}
	localA := map[key]string{}
	refs := map[int64]*harness.Reference{}
	local := func(seed int64, cfgs int) (string, string, *harness.Reference) {
		k := key{seed, cfgs}
		if _, ok := localM[k]; !ok {
			h, err := harness.New(seed)
			if err != nil {
				t.Fatal(err)
			}
			if refs[seed] == nil {
				ref, err := h.Reference()
				if err != nil {
					t.Fatal(err)
				}
				refs[seed] = ref
			}
			cps := proc.StockConfigs()[:cfgs]
			var mbuf, abuf bytes.Buffer
			ctx := context.Background()
			if err := experiments.StreamMeasurementsCSVFrom(ctx, h, refs[seed], cps, &mbuf, 0); err != nil {
				t.Fatal(err)
			}
			if err := experiments.StreamAggregatesCSVFrom(ctx, h, refs[seed], cps, &abuf, 0); err != nil {
				t.Fatal(err)
			}
			localM[k] = mbuf.String()
			localA[k] = abuf.String()
		}
		return localM[k], localA[k], refs[seed]
	}

	for i := 0; i < scenarios; i++ {
		seed := seeds[rng.Intn(len(seeds))]
		cfgs := 1 + rng.Intn(2)
		nBackends := 1 + rng.Intn(len(backendURLs))
		leaseCells := 1 + rng.Intn(9)
		pullers := 1 + rng.Intn(3)

		// Per-backend chaos, freshly seeded per scenario. A kill is only
		// scheduled when survivors remain.
		var urls []string
		var proxies []*chaoshttp.Proxy
		var fronts []*httptest.Server
		killIdx := -1
		if nBackends > 1 && rng.Intn(4) == 0 {
			killIdx = rng.Intn(nBackends)
		}
		for b := 0; b < nBackends; b++ {
			copts := chaoshttp.Options{
				Seed:         rng.Int63(),
				DropProb:     rng.Float64() * 0.15,
				TruncateProb: rng.Float64() * 0.25,
				ChunkDelay:   time.Duration(rng.Intn(2)) * time.Millisecond,
			}
			if b == killIdx {
				copts.KillAfter = int64(1 + rng.Intn(8))
			}
			p := chaoshttp.New(backendURLs[b], copts)
			front := httptest.NewServer(p)
			proxies = append(proxies, p)
			fronts = append(fronts, front)
			urls = append(urls, front.URL)
		}

		name := fmt.Sprintf("scenario %d: seed=%d cfgs=%d backends=%d lease=%d pullers=%d kill=%d",
			i, seed, cfgs, nBackends, leaseCells, pullers, killIdx)
		func() {
			defer func() {
				for _, f := range fronts {
					f.Close()
				}
			}()
			s, err := NewScheduler(urls, SchedulerOptions{
				Seed:              &seed,
				LeaseCells:        leaseCells,
				LeaseExpiry:       50 * time.Millisecond,
				PullersPerBackend: pullers,
				BreakerThreshold:  3,
				BreakerCooldown:   60 * time.Millisecond,
				BackoffBase:       time.Millisecond,
				BackoffMax:        15 * time.Millisecond,
				MaxLeaseFailures:  1000,
			})
			if err != nil {
				t.Fatal(err)
			}
			wantM, wantA, ref := local(seed, cfgs)
			cps := proc.StockConfigs()[:cfgs]
			var mbuf, abuf bytes.Buffer
			ctx := context.Background()
			if err := experiments.StreamMeasurementsCSVFrom(ctx, s, ref, cps, &mbuf, 0); err != nil {
				t.Fatalf("%s: measurements: %v", name, err)
			}
			if err := experiments.StreamAggregatesCSVFrom(ctx, s, ref, cps, &abuf, 0); err != nil {
				t.Fatalf("%s: aggregates: %v", name, err)
			}
			if md5.Sum(mbuf.Bytes()) != md5.Sum([]byte(wantM)) {
				t.Errorf("%s: measurements.csv md5 differs from local serial run", name)
			}
			if md5.Sum(abuf.Bytes()) != md5.Sum([]byte(wantA)) {
				t.Errorf("%s: aggregates.csv md5 differs from local serial run", name)
			}
			// A kill only fires if the victim saw enough requests; work
			// stealing legitimately lets fast peers absorb everything.
			if killIdx >= 0 && !proxies[killIdx].Dead() {
				t.Logf("%s: victim saw %d requests, below its kill threshold", name, proxies[killIdx].Stats().Requests)
			}
		}()
		if t.Failed() {
			return
		}
	}
}
