package cluster

// Per-backend SLO attribution. The coordinator's resilience tactics —
// hedging a straggler, failing over off a dead member, stealing a
// stalled lease — are exactly the moments it pays latency or capacity
// to cover for one specific backend. Counting those interventions per
// victim turns "the fleet burned error budget" into "backend X cost us
// N hedges and M steals", which is what an SLO post-mortem actually
// needs. The counters ride Stats()/WriteMetrics like every other
// coordinator counter, so monitors federate them with zero new scrape
// code.

import "sync/atomic"

// backendAttr holds the interventions charged against one backend.
type backendAttr struct {
	hedgedAway  atomic.Int64 // batches duplicated away because this primary straggled
	hedgeLosses atomic.Int64 // hedge duplicates that answered before this primary
	failedOver  atomic.Int64 // chunks re-routed off this backend after it died
	stolenFrom  atomic.Int64 // leases stolen from this stalled holder
	leaseFails  atomic.Int64 // lease dispatches this holder failed
}

// attribution is a fixed-member attribution table. The member set is
// frozen at construction, so lookups are lock-free reads of an
// immutable map and the counters themselves are atomics.
type attribution struct {
	by map[string]*backendAttr
}

func newAttribution(members []string) *attribution {
	a := &attribution{by: make(map[string]*backendAttr, len(members))}
	for _, m := range members {
		a.by[m] = &backendAttr{}
	}
	return a
}

// get returns the backend's counter block; an unknown name (cannot
// happen for member-derived call sites) gets a discard block so call
// sites stay unconditional.
func (a *attribution) get(backend string) *backendAttr {
	if b, ok := a.by[backend]; ok {
		return b
	}
	return &backendAttr{}
}
