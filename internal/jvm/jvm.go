// Package jvm models the managed runtime under the paper's Java
// measurement methodology (Section 2.2): a HotSpot-style virtual machine
// with adaptive JIT compilation that warms up over iterations, a
// generously sized heap (3x the minimum), and concurrent service threads
// (compiler, collector, profiler) that parallelize execution even for
// single-threaded applications.
//
// The paper measures the fifth iteration within one JVM invocation to
// capture steady state and repeats across twenty invocations because JIT
// and GC decisions make runs non-deterministic. Plan reproduces exactly
// that shape: five per-iteration execution specs whose early iterations
// carry compilation work and slower unoptimized code, with only the last
// one measured.
package jvm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Methodology constants from Section 2.2 of the paper.
const (
	// Invocations is the number of JVM invocations averaged per result.
	Invocations = 20
	// Iterations is the number of in-process iterations; the last is
	// the measured steady-state one.
	Iterations = 5
	// HeapFactor is the heap size relative to the benchmark minimum.
	HeapFactor = 3.0
)

// RateJitterSD reproduces Table 2's Java execution-time confidence
// intervals: adaptive compilation and GC make runs several percent
// non-deterministic even at steady state.
const RateJitterSD = 0.034

// PowerJitterSD is the corresponding power variation.
const PowerJitterSD = 0.055

// warmup describes how much slower iteration k runs than steady state:
// early iterations interpret and compile; by the fifth, frequently
// executed code is optimized but a little compiler activity may remain.
func warmup(iteration int) (float64, error) {
	if iteration < 1 || iteration > Iterations {
		return 0, fmt.Errorf("jvm: iteration %d outside 1..%d", iteration, Iterations)
	}
	// Iteration 1 runs ~2.2x slow; the tail decays geometrically and is
	// effectively flat by iteration 5 (a ~1% residue of JIT activity).
	return 1 + 1.2*math.Exp(-float64(iteration-1)/1.1) + 0.01, nil
}

// Plan is the execution plan for one JVM invocation: one spec per
// iteration, run back to back inside a single process.
type Plan struct {
	Benchmark *workload.Benchmark
	Specs     [Iterations]sim.ExecSpec
}

// MeasuredIndex returns the index of the iteration the methodology
// reports (the fifth, i.e. the last).
func (p *Plan) MeasuredIndex() int { return Iterations - 1 }

// NewPlan builds the invocation plan for a managed benchmark on a machine
// exposing the given hardware contexts.
func NewPlan(b *workload.Benchmark, contexts int) (*Plan, error) {
	if b == nil {
		return nil, errors.New("jvm: nil benchmark")
	}
	if !b.Managed() {
		return nil, fmt.Errorf("jvm: %s is not a managed benchmark", b.Name)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if contexts < 1 {
		return nil, errors.New("jvm: need at least one hardware context")
	}

	plan := &Plan{Benchmark: b}
	gcService := gcServiceWork(b)
	for it := 1; it <= Iterations; it++ {
		slow, err := warmup(it)
		if err != nil {
			return nil, err
		}
		// Early iterations both run slower (interpreted/unoptimized
		// code) and carry extra compiler service work.
		jitExtra := (slow - 1) * 0.5
		spec := sim.ExecSpec{
			Work:           b.Instructions() * slow,
			AppThreads:     b.ThreadsOn(contexts),
			ParallelFrac:   b.ParallelFrac,
			SyncOverhead:   b.SyncOverhead,
			ILP:            b.ILP,
			MPKI:           b.MPKI,
			WorkingSetKB:   b.WorkingSetKB,
			MLPFactor:      b.MLPFactor,
			Activity:       b.Activity,
			BranchWeight:   b.BranchWeight,
			ServiceWork:    clamp01(b.ServiceFrac + gcService + jitExtra),
			ServiceThreads: 2,
			CoLocPenalty:   b.Displacement,
			RateJitterSD:   RateJitterSD,
			PowerJitterSD:  PowerJitterSD,
		}
		plan.Specs[it-1] = spec
	}
	return plan, nil
}

// gcServiceWork converts the benchmark's allocation rate into collector
// work at the methodology's default 3x minimum heap.
func gcServiceWork(b *workload.Benchmark) float64 {
	return GCServiceWorkAt(b, HeapFactor)
}

// GCServiceWorkAt returns collector work as a fraction of application
// work at the given heap factor (heap size over the benchmark minimum).
// Collection frequency is proportional to allocation rate over heap
// headroom (heapFactor - 1 reserves of garbage before each collection),
// so halving the headroom roughly doubles collector work — the standard
// space-time tradeoff behind the paper's generous 3x choice. The cost
// constant is calibrated so a ~2 GB/s allocator (lusearch) spends ~8% of
// its cycles in collection at 3x.
func GCServiceWorkAt(b *workload.Benchmark, heapFactor float64) float64 {
	if heapFactor < MinHeapFactor {
		heapFactor = MinHeapFactor
	}
	const gcCostPerMBps = 0.000035
	headroom := (heapFactor - 1) / (HeapFactor - 1)
	return b.AllocMBps * gcCostPerMBps / headroom
}

// MinHeapFactor is the smallest runnable heap: below ~1.2x the minimum,
// collection thrashes.
const MinHeapFactor = 1.2

// NewPlanHeap builds an invocation plan with a non-default heap factor,
// for the heap-sensitivity study.
func NewPlanHeap(b *workload.Benchmark, contexts int, heapFactor float64) (*Plan, error) {
	plan, err := NewPlan(b, contexts)
	if err != nil {
		return nil, err
	}
	delta := GCServiceWorkAt(b, heapFactor) - GCServiceWorkAt(b, HeapFactor)
	for i := range plan.Specs {
		plan.Specs[i].ServiceWork = clamp01(plan.Specs[i].ServiceWork + delta)
		// A tight heap also forces collections to displace more of the
		// application's cache and TLB state.
		if heapFactor < HeapFactor {
			plan.Specs[i].CoLocPenalty *= 1 + (HeapFactor-heapFactor)*0.15
		}
	}
	return plan, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}
