package jvm

import (
	"errors"
	"hash/fnv"

	"repro/internal/sim"
	"repro/internal/workload"
)

// VM describes one Java virtual machine implementation. The paper runs
// Oracle (Sun) HotSpot as its primary JVM and cross-checks Oracle
// JRockit and IBM J9: "Their average performance is similar to HotSpot,
// but individual benchmarks vary substantially. We observe aggregate
// power differences of up to 10% between JVMs" (Section 2.2).
type VM struct {
	// Name identifies the implementation.
	Name string
	// ServiceScale multiplies the benchmark's service work: collectors
	// and compilers differ in how much background work they do.
	ServiceScale float64
	// WarmupScale multiplies the early-iteration compilation overhead:
	// JIT tiering strategies differ.
	WarmupScale float64
	// ActivityBias multiplies switching activity: code quality and
	// vectorization differences show up as power.
	ActivityBias float64
	// PerBenchSD is the standard deviation of the deterministic
	// per-benchmark performance deviation from HotSpot: the "individual
	// benchmarks vary substantially" effect.
	PerBenchSD float64
}

// HotSpot is the paper's primary JVM (build 16.3-b01, Java 1.6.0): the
// baseline against which the others are expressed.
func HotSpot() VM {
	return VM{Name: "HotSpot", ServiceScale: 1.0, WarmupScale: 1.0, ActivityBias: 1.0, PerBenchSD: 0}
}

// JRockit is Oracle JRockit (build R28.0.0): a heavier optimizing
// compiler with no interpreter, more background compilation, and
// slightly hotter generated code.
func JRockit() VM {
	return VM{Name: "JRockit", ServiceScale: 1.15, WarmupScale: 1.35, ActivityBias: 1.06, PerBenchSD: 0.07}
}

// J9 is IBM J9 (build pxi3260sr8): a leaner runtime with a lighter
// collector at these heap sizes and cooler code.
func J9() VM {
	return VM{Name: "J9", ServiceScale: 0.88, WarmupScale: 0.90, ActivityBias: 0.95, PerBenchSD: 0.08}
}

// VMs returns the three JVMs of Section 2.2.
func VMs() []VM { return []VM{HotSpot(), JRockit(), J9()} }

// Validate checks the VM's parameters.
func (v VM) Validate() error {
	switch {
	case v.Name == "":
		return errors.New("jvm: VM needs a name")
	case v.ServiceScale <= 0 || v.WarmupScale <= 0 || v.ActivityBias <= 0:
		return errors.New("jvm: VM scales must be positive")
	case v.PerBenchSD < 0 || v.PerBenchSD > 0.5:
		return errors.New("jvm: per-benchmark deviation outside [0, 0.5]")
	}
	return nil
}

// perfDeviation returns the VM's deterministic per-benchmark speed
// multiplier relative to HotSpot, drawn from a hash of (VM, benchmark)
// so a given pairing always deviates the same way — JVM differences are
// systematic per benchmark, not run-to-run noise.
func (v VM) perfDeviation(benchName string) float64 {
	if v.PerBenchSD == 0 {
		return 1
	}
	h := fnv.New64a()
	h.Write([]byte(v.Name))
	h.Write([]byte{'|'})
	h.Write([]byte(benchName))
	// Map the hash to a roughly uniform value in [-1.7, 1.7] "sigmas";
	// a uniform spread matches "individual benchmarks vary
	// substantially" without extreme outliers.
	u := float64(h.Sum64()%10000)/10000*3.4 - 1.7
	dev := 1 + u*v.PerBenchSD
	if dev < 0.6 {
		dev = 0.6
	}
	return dev
}

// NewPlanVM builds an invocation plan for a managed benchmark under a
// specific JVM. NewPlan is equivalent to NewPlanVM(HotSpot(), ...).
func NewPlanVM(vm VM, b *workload.Benchmark, contexts int) (*Plan, error) {
	if err := vm.Validate(); err != nil {
		return nil, err
	}
	plan, err := NewPlan(b, contexts)
	if err != nil {
		return nil, err
	}
	dev := vm.perfDeviation(b.Name)
	for i := range plan.Specs {
		spec := &plan.Specs[i]
		// Code-quality deviation: more work retired for the same job.
		spec.Work /= dev
		// Early iterations carry the VM's own compilation profile.
		if i < len(plan.Specs)-1 {
			spec.Work *= 1 + (vm.WarmupScale-1)*0.5
		}
		spec.ServiceWork = clamp01(spec.ServiceWork * vm.ServiceScale)
		spec.Activity *= vm.ActivityBias
		if spec.Activity > 1.2 {
			spec.Activity = 1.2
		}
	}
	return plan, nil
}

// RunVM executes one steady-state iteration of the benchmark under the
// given VM on the machine and returns the sim result — the building
// block of the Section 2.2 JVM comparison.
func RunVM(vm VM, b *workload.Benchmark, m *sim.Machine, seed int64) (sim.Result, error) {
	plan, err := NewPlanVM(vm, b, m.Cfg.Contexts())
	if err != nil {
		return sim.Result{}, err
	}
	return m.Run(plan.Specs[plan.MeasuredIndex()], seed, nil)
}
