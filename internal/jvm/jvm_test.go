package jvm

import (
	"testing"

	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestMethodologyConstants(t *testing.T) {
	// Section 2.2 of the paper.
	if Invocations != 20 {
		t.Fatalf("Invocations = %d, want 20", Invocations)
	}
	if Iterations != 5 {
		t.Fatalf("Iterations = %d, want 5", Iterations)
	}
	if HeapFactor != 3.0 {
		t.Fatalf("HeapFactor = %v, want 3x minimum heap", HeapFactor)
	}
}

func TestWarmupDecaysToSteadyState(t *testing.T) {
	prev := 1e9
	for it := 1; it <= Iterations; it++ {
		slow, err := warmup(it)
		if err != nil {
			t.Fatal(err)
		}
		if slow >= prev {
			t.Fatalf("iteration %d: warmup %v did not decrease", it, slow)
		}
		if slow <= 1 {
			t.Fatalf("iteration %d: warmup %v must stay above steady state", it, slow)
		}
		prev = slow
	}
	// The first iteration is substantially slower; the fifth nearly flat.
	first, err := warmup(1)
	if err != nil {
		t.Fatal(err)
	}
	last, err := warmup(Iterations)
	if err != nil {
		t.Fatal(err)
	}
	if first < 1.8 {
		t.Fatalf("first iteration %vx, want heavy compilation (>1.8x)", first)
	}
	if last > 1.05 {
		t.Fatalf("fifth iteration %vx, want near steady state (<1.05x)", last)
	}
}

func TestWarmupRange(t *testing.T) {
	if _, err := warmup(0); err == nil {
		t.Fatal("iteration 0 accepted")
	}
	if _, err := warmup(Iterations + 1); err == nil {
		t.Fatal("iteration beyond plan accepted")
	}
}

func TestNewPlanShape(t *testing.T) {
	b, err := workload.ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MeasuredIndex() != Iterations-1 {
		t.Fatalf("measured index = %d, want the last iteration", plan.MeasuredIndex())
	}
	for i, spec := range plan.Specs {
		if err := spec.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i+1, err)
		}
		if spec.ServiceThreads < 1 {
			t.Fatalf("iteration %d: no service threads", i+1)
		}
	}
	// Early iterations carry more work (unoptimized code) and more
	// service work (the compiler) than the measured one.
	first, last := plan.Specs[0], plan.Specs[plan.MeasuredIndex()]
	if first.Work <= last.Work {
		t.Fatal("first iteration must carry more work than steady state")
	}
	if first.ServiceWork <= last.ServiceWork {
		t.Fatal("first iteration must carry more service work")
	}
}

func TestNewPlanAllocationDrivesGC(t *testing.T) {
	hi, err := workload.ByName("lusearch") // ~2.3 GB/s allocator
	if err != nil {
		t.Fatal(err)
	}
	lo, err := workload.ByName("mpegaudio") // ~10 MB/s
	if err != nil {
		t.Fatal(err)
	}
	if gcServiceWork(hi) <= gcServiceWork(lo) {
		t.Fatal("higher allocation rate must mean more collector work")
	}
	// lusearch's collector work should land near the calibrated ~8%.
	if gc := gcServiceWork(hi); gc < 0.04 || gc > 0.15 {
		t.Fatalf("lusearch GC work = %v, want ~0.08", gc)
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan(nil, 4); err == nil {
		t.Fatal("nil benchmark accepted")
	}
	nat, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(nat, 4); err == nil {
		t.Fatal("native benchmark accepted")
	}
	managed, err := workload.ByName("xalan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(managed, 0); err == nil {
		t.Fatal("zero contexts accepted")
	}
	bad := *managed
	bad.WorkingSetKB = -1
	if _, err := NewPlan(&bad, 4); err == nil {
		t.Fatal("invalid benchmark accepted")
	}
}

func TestServiceWorkClamped(t *testing.T) {
	b, err := workload.ByName("antlr") // highest ServiceFrac
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range plan.Specs {
		if spec.ServiceWork >= 1 {
			t.Fatalf("iteration %d: service work %v not clamped", i+1, spec.ServiceWork)
		}
	}
}

func TestJavaJitterLargerThanNative(t *testing.T) {
	// Table 2: Java CIs are the largest because of JIT and GC
	// non-determinism across twenty invocations.
	if RateJitterSD < 0.02 {
		t.Fatalf("Java rate jitter %v too small to reproduce Table 2", RateJitterSD)
	}
}

func TestVMsValidateAndDiffer(t *testing.T) {
	vms := VMs()
	if len(vms) != 3 {
		t.Fatalf("%d VMs, want HotSpot, JRockit, J9", len(vms))
	}
	names := map[string]bool{}
	for _, vm := range vms {
		if err := vm.Validate(); err != nil {
			t.Errorf("%s: %v", vm.Name, err)
		}
		names[vm.Name] = true
	}
	if len(names) != 3 {
		t.Fatal("VM names collide")
	}
	bad := VM{Name: "x", ServiceScale: 0, WarmupScale: 1, ActivityBias: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid VM accepted")
	}
}

func TestHotSpotIsNeutralBaseline(t *testing.T) {
	hs := HotSpot()
	for _, bench := range []string{"lusearch", "db", "antlr"} {
		if dev := hs.perfDeviation(bench); dev != 1 {
			t.Fatalf("HotSpot deviation on %s = %v, want 1", bench, dev)
		}
	}
}

func TestPerBenchDeviationDeterministicAndVaried(t *testing.T) {
	j9 := J9()
	a := j9.perfDeviation("lusearch")
	if b := j9.perfDeviation("lusearch"); b != a {
		t.Fatal("deviation not deterministic")
	}
	// Across the Java suite the deviations must actually spread.
	var lo, hi float64 = 10, 0
	for _, b := range workload.ByGroup(workload.JavaNonScalable) {
		d := j9.perfDeviation(b.Name)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo < 0.05 {
		t.Fatalf("per-benchmark spread only %v, want substantial variation", hi-lo)
	}
	if lo < 0.6 || hi > 1.4 {
		t.Fatalf("deviations outside sane bounds: [%v, %v]", lo, hi)
	}
}

func TestNewPlanVMAppliesProfile(t *testing.T) {
	b, err := workload.ByName("xalan")
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewPlanVM(HotSpot(), b, 8)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := NewPlanVM(JRockit(), b, 8)
	if err != nil {
		t.Fatal(err)
	}
	// JRockit does more background compilation and service work.
	if jr.Specs[0].ServiceWork <= hs.Specs[0].ServiceWork {
		t.Fatal("JRockit service work not above HotSpot")
	}
	if jr.Specs[0].Activity <= hs.Specs[0].Activity {
		t.Fatal("JRockit activity not above HotSpot")
	}
	bad := VM{}
	if _, err := NewPlanVM(bad, b, 8); err == nil {
		t.Fatal("invalid VM accepted")
	}
}

func TestRunVMExecutes(t *testing.T) {
	b, err := workload.ByName("sunflow")
	if err != nil {
		t.Fatal(err)
	}
	p, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.NewMachine(p, p.Stock())
	if err != nil {
		t.Fatal(err)
	}
	hs, err := RunVM(HotSpot(), b, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Seconds <= 0 || hs.AvgWatts <= 0 {
		t.Fatalf("degenerate result %+v", hs)
	}
	// A different VM produces a different (deterministic) result.
	j9, err := RunVM(J9(), b, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j9.Seconds == hs.Seconds {
		t.Fatal("J9 identical to HotSpot")
	}
	if _, err := RunVM(VM{}, b, m, 1); err == nil {
		t.Fatal("invalid VM accepted")
	}
}

func TestNewPlanHeapShapesGC(t *testing.T) {
	b, err := workload.ByName("lusearch")
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewPlanHeap(b, 8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	generous, err := NewPlanHeap(b, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewPlan(b, 8)
	if err != nil {
		t.Fatal(err)
	}
	i := def.MeasuredIndex()
	if !(tight.Specs[i].ServiceWork > def.Specs[i].ServiceWork &&
		def.Specs[i].ServiceWork > generous.Specs[i].ServiceWork) {
		t.Fatalf("GC work ordering wrong: %v / %v / %v",
			tight.Specs[i].ServiceWork, def.Specs[i].ServiceWork, generous.Specs[i].ServiceWork)
	}
	// A tight heap also displaces more cache/TLB state.
	if tight.Specs[i].CoLocPenalty <= def.Specs[i].CoLocPenalty {
		t.Fatal("tight heap did not raise displacement")
	}
	// Below the floor clamps rather than exploding.
	floor, err := NewPlanHeap(b, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if floor.Specs[i].ServiceWork < tight.Specs[i].ServiceWork {
		t.Fatal("sub-minimum heap did not clamp")
	}
	if _, err := NewPlanHeap(nil, 8, 3); err == nil {
		t.Fatal("nil benchmark accepted")
	}
}
