package chaoshttp

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoBackend returns a backend serving a fixed body, plus a proxy in
// front of it with the given fault options.
func echoBackend(t *testing.T, body string, opts Options) (*Proxy, *httptest.Server) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Backend", "yes")
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, body)
	}))
	t.Cleanup(backend.Close)
	p := New(backend.URL, opts)
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}

func TestProxyTransparent(t *testing.T) {
	p, front := echoBackend(t, "hello through the proxy", Options{})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(front.URL+"/some/path?q=1", "text/plain", strings.NewReader("ping"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != "hello through the proxy" {
			t.Fatalf("body = %q", b)
		}
		if resp.Header.Get("X-Backend") != "yes" {
			t.Fatal("backend header not forwarded")
		}
	}
	st := p.Stats()
	if st.Requests != 3 || st.Dropped+st.Delayed+st.Truncated+st.Severed != 0 {
		t.Fatalf("stats = %+v, want 3 clean requests", st)
	}
}

func TestProxyKillAfterAndRestart(t *testing.T) {
	p, front := echoBackend(t, "ok", Options{KillAfter: 1})
	if resp, err := http.Get(front.URL); err != nil {
		t.Fatalf("first request should pass: %v", err)
	} else {
		resp.Body.Close()
	}
	if _, err := http.Get(front.URL); err == nil {
		t.Fatal("second request should be severed (KillAfter: 1)")
	}
	if !p.Dead() {
		t.Fatal("proxy should report dead")
	}
	p.Restart()
	// KillAfter re-kills on the next request; Restart is the seam for
	// schedules driven by the test itself, so re-arm manually.
	p.opts.KillAfter = 0
	if resp, err := http.Get(front.URL); err != nil {
		t.Fatalf("restarted proxy should serve: %v", err)
	} else {
		resp.Body.Close()
	}
	if st := p.Stats(); st.Severed == 0 {
		t.Fatalf("stats = %+v, want severed > 0", st)
	}
}

func TestProxyTruncatesMidBody(t *testing.T) {
	body := strings.Repeat("0123456789", 200) // 2000 bytes
	p, front := echoBackend(t, body, Options{TruncateProb: 1, TruncateBytes: 37})
	resp, err := http.Get(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error; want a severed body", len(got))
	}
	if len(got) != 37 {
		t.Fatalf("received %d bytes before the cut, want exactly 37", len(got))
	}
	if string(got) != body[:37] {
		t.Fatal("truncated prefix differs from the backend's bytes")
	}
	if st := p.Stats(); st.Truncated != 1 {
		t.Fatalf("stats = %+v, want 1 truncation", st)
	}
}

func TestProxyDelay(t *testing.T) {
	_, front := echoBackend(t, "ok", Options{DelayProb: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	resp, err := http.Get(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 30ms", elapsed)
	}
}

// TestProxySeededScheduleReplays drives two identically-seeded proxies
// with the same sequential request sequence and expects identical fault
// decisions — the property that makes a chaos run reproducible.
func TestProxySeededScheduleReplays(t *testing.T) {
	run := func(seed int64) Stats {
		p, front := echoBackend(t, "payload-payload-payload", Options{
			Seed: seed, DropProb: 0.3, TruncateProb: 0.3, TruncateBytes: 5,
		})
		for i := 0; i < 40; i++ {
			resp, err := http.Get(fmt.Sprintf("%s/%d", front.URL, i))
			if err != nil {
				continue // dropped: expected
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return p.Stats()
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := run(8)
	if a == c {
		t.Fatalf("different seeds produced identical schedules: %+v", a)
	}
}
