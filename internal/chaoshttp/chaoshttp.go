// Package chaoshttp is an in-process fault-injecting reverse proxy for
// tests: it forwards HTTP requests to a target backend while delaying,
// dropping, truncating mid-chunk, and killing/restarting the path on a
// seeded schedule. Wrapping each backend of an httptest fleet in a
// Proxy turns distributed failure handling — straggler re-dispatch,
// lease expiry, stream-truncation recovery — into a deterministic,
// race-enabled test instead of a manual kill experiment.
//
// Fault decisions are drawn from a seeded PRNG in request-arrival
// order, so a single-threaded request sequence replays exactly; under
// concurrency the interleaving varies but the fault *rates* and the
// per-seed decision stream do not. Faults sever connections the way
// real failures do (http.ErrAbortHandler), so clients observe transport
// errors and truncated bodies, never tidy error responses.
package chaoshttp

import (
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Options shapes the fault schedule. The zero value injects nothing —
// a transparent proxy.
type Options struct {
	// Seed seeds the fault schedule; the zero seed is a valid seed.
	Seed int64
	// DropProb severs the connection before forwarding, per request.
	DropProb float64
	// DelayProb sleeps Delay before forwarding, per request. Delay <= 0
	// with a positive DelayProb selects 10ms.
	DelayProb float64
	Delay     time.Duration
	// ChunkDelay sleeps after every response chunk forwarded — the
	// straggling-backend fault: the backend computes at full speed but
	// its results trickle.
	ChunkDelay time.Duration
	// TruncateProb severs the response mid-chunk after TruncateBytes
	// bytes of body, per request. TruncateBytes <= 0 draws a cutoff in
	// [1, 4096) per faulted request, so truncations land in headers,
	// mid-line, and between lines of a streamed body.
	TruncateProb  float64
	TruncateBytes int
	// KillAfter kills the proxy permanently after it has accepted this
	// many requests (0 = never): request KillAfter+1 and every later one
	// is severed, and in-flight response streams are cut at their next
	// chunk — exactly the shape of a backend process death. Restart
	// revives it.
	KillAfter int64
}

// Stats counts injected faults; tests assert the chaos actually fired.
type Stats struct {
	Requests  int64 `json:"requests"`
	Dropped   int64 `json:"dropped"`
	Delayed   int64 `json:"delayed"`
	Truncated int64 `json:"truncated"`
	Severed   int64 `json:"severed"` // refused while dead
}

// Proxy is the fault-injecting reverse proxy. Create with New, serve
// with httptest.NewServer(proxy).
type Proxy struct {
	target string
	opts   Options
	client *http.Client

	mu  sync.Mutex // guards rng: decisions draw in arrival order
	rng *rand.Rand

	dead atomic.Bool

	requests  atomic.Int64
	dropped   atomic.Int64
	delayed   atomic.Int64
	truncated atomic.Int64
	severed   atomic.Int64
}

// New builds a proxy forwarding to the backend at target (a base URL,
// e.g. an httptest.Server.URL).
func New(target string, opts Options) *Proxy {
	for len(target) > 0 && target[len(target)-1] == '/' {
		target = target[:len(target)-1]
	}
	if opts.DelayProb > 0 && opts.Delay <= 0 {
		opts.Delay = 10 * time.Millisecond
	}
	return &Proxy{
		target: target,
		opts:   opts,
		// A dedicated client: the proxy must not share the default
		// transport's connection pool with the system under test.
		client: &http.Client{Transport: http.DefaultTransport.(*http.Transport).Clone()},
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}
}

// Kill severs every current and future request until Restart — the
// backend process is "dead" even though the wrapped server still runs
// (its in-flight compute drains harmlessly, as with a real SIGKILL
// where the coordinator just never hears back).
func (p *Proxy) Kill() { p.dead.Store(true) }

// Restart revives a killed proxy.
func (p *Proxy) Restart() { p.dead.Store(false) }

// Dead reports whether the proxy is currently severing all traffic.
func (p *Proxy) Dead() bool { return p.dead.Load() }

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:  p.requests.Load(),
		Dropped:   p.dropped.Load(),
		Delayed:   p.delayed.Load(),
		Truncated: p.truncated.Load(),
		Severed:   p.severed.Load(),
	}
}

// decision is one request's fault draw.
type decision struct {
	drop     bool
	delay    bool
	truncate bool
	cutoff   int
}

func (p *Proxy) decide() decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	var d decision
	// Every probability is drawn every time, so the decision stream for
	// a given seed is independent of which faults are enabled.
	d.drop = p.rng.Float64() < p.opts.DropProb
	d.delay = p.rng.Float64() < p.opts.DelayProb
	d.truncate = p.rng.Float64() < p.opts.TruncateProb
	d.cutoff = p.opts.TruncateBytes
	if c := 1 + p.rng.Intn(4095); d.cutoff <= 0 {
		d.cutoff = c
	}
	return d
}

// sever aborts the exchange the way a dying process does: the client
// sees a severed connection (or a truncated body), never a response.
func sever() {
	panic(http.ErrAbortHandler)
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := p.requests.Add(1)
	if p.opts.KillAfter > 0 && n > p.opts.KillAfter {
		p.dead.Store(true)
	}
	if p.dead.Load() {
		p.severed.Add(1)
		sever()
	}
	d := p.decide()
	if d.drop {
		p.dropped.Add(1)
		sever()
	}
	if d.delay {
		p.delayed.Add(1)
		select {
		case <-time.After(p.opts.Delay):
		case <-r.Context().Done():
			return
		}
	}

	out, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		sever()
	}
	out.Header = r.Header.Clone()
	resp, err := p.client.Do(out)
	if err != nil {
		// The wrapped backend itself failed (or the client hung up);
		// either way the caller sees a severed connection.
		sever()
	}
	defer resp.Body.Close()

	h := w.Header()
	for k, vs := range resp.Header {
		// Content-Length is dropped so the response goes out chunked:
		// truncation then looks like a severed stream, not a short read
		// the client can size-check.
		if k == "Content-Length" {
			continue
		}
		h[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)

	var written int
	buf := make([]byte, 512)
	for {
		if p.dead.Load() {
			// Killed mid-stream: cut the in-flight response here.
			p.severed.Add(1)
			sever()
		}
		nr, rerr := resp.Body.Read(buf)
		if nr > 0 {
			chunk := buf[:nr]
			if d.truncate && written+nr >= d.cutoff {
				// Mid-chunk truncation: ship the partial bytes, flush
				// them onto the wire, then die.
				if keep := d.cutoff - written; keep > 0 {
					_, _ = w.Write(chunk[:keep])
				}
				if flusher != nil {
					flusher.Flush()
				}
				p.truncated.Add(1)
				sever()
			}
			if _, werr := w.Write(chunk); werr != nil {
				return // client went away
			}
			written += nr
			if flusher != nil {
				flusher.Flush()
			}
			if p.opts.ChunkDelay > 0 {
				select {
				case <-time.After(p.opts.ChunkDelay):
				case <-r.Context().Done():
					return
				}
			}
		}
		if rerr == io.EOF {
			return
		}
		if rerr != nil {
			sever()
		}
	}
}
