package profiling

// Fleet continuous profiling: harvest pprof CPU and heap profiles from
// every backend's -pprof endpoint, keep a bounded rolling window per
// backend, and answer the operational questions raw profiles cannot —
// how busy is each backend's CPU, how fast is it allocating, and which
// functions does the latest window charge for the change. The monitor
// drives HarvestAll on a jittered cadence (observer effect: profiles
// are pulled between sweeps, never from the serving path), and alloc
// rates are pushed as series so allocation regressions ride the same
// detector state machine as every other alert.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FleetOptions configures a fleet profiler.
type FleetOptions struct {
	// Backends are base URLs whose /debug/pprof endpoints to harvest
	// (powerperfd -pprof mounts them).
	Backends []string
	// Seconds is the CPU sampling window per harvest (<=0 selects 1).
	// Each harvest blocks this long on the backend, so the caller runs
	// harvests off its hot path.
	Seconds int
	// Windows bounds retained harvests per backend (<=0 selects 8).
	Windows int
	// Timeout guards each HTTP request beyond the CPU window itself
	// (<=0 selects 5s).
	Timeout time.Duration
	// HTTPClient overrides the transport (tests); nil uses a private
	// client so profile pulls never share the serving pool.
	HTTPClient *http.Client
	// UserAgent stamps harvest requests.
	UserAgent string
}

// Harvest is one backend's profile capture.
type Harvest struct {
	T   time.Time
	Err string // non-empty when the capture failed; values then zero

	CPUByFunc     map[string]int64 // self CPU ns per leaf function over the window
	CPUDurationNS int64            // sampled wall window
	CPUTotalNS    int64            // total sampled CPU ns

	AllocByFunc map[string]int64 // cumulative alloc_space bytes per leaf function
	AllocTotal  int64            // cumulative alloc_space bytes since process start
	HeapInuse   int64            // inuse_space bytes at capture (gauge)
}

// Fleet harvests and retains profiles for a set of backends.
type Fleet struct {
	opts   FleetOptions
	client *http.Client

	mu   sync.Mutex
	wins map[string][]Harvest // oldest first, bounded by Windows
}

// NewFleet builds a fleet profiler.
func NewFleet(opts FleetOptions) *Fleet {
	if opts.Seconds <= 0 {
		opts.Seconds = 1
	}
	if opts.Windows <= 0 {
		opts.Windows = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	return &Fleet{opts: opts, client: client, wins: make(map[string][]Harvest)}
}

// Backends returns the configured backend URLs.
func (f *Fleet) Backends() []string { return f.opts.Backends }

// HarvestAll captures one window from every backend concurrently and
// appends it to the rolling windows. Failures record an error harvest
// (visible in snapshots) rather than aborting the fleet.
func (f *Fleet) HarvestAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range f.opts.Backends {
		wg.Add(1)
		go func(backend string) {
			defer wg.Done()
			h := f.harvestOne(ctx, backend)
			f.mu.Lock()
			win := append(f.wins[backend], h)
			if len(win) > f.opts.Windows {
				win = win[len(win)-f.opts.Windows:]
			}
			f.wins[backend] = win
			f.mu.Unlock()
		}(b)
	}
	wg.Wait()
}

func (f *Fleet) harvestOne(ctx context.Context, backend string) Harvest {
	h := Harvest{T: time.Now()}
	cpu, err := f.get(ctx, backend, fmt.Sprintf("/debug/pprof/profile?seconds=%d", f.opts.Seconds),
		time.Duration(f.opts.Seconds)*time.Second+f.opts.Timeout)
	if err != nil {
		h.Err = err.Error()
		return h
	}
	heap, err := f.get(ctx, backend, "/debug/pprof/heap", f.opts.Timeout)
	if err != nil {
		h.Err = err.Error()
		return h
	}
	cp, err := Parse(cpu)
	if err != nil {
		h.Err = "cpu: " + err.Error()
		return h
	}
	hp, err := Parse(heap)
	if err != nil {
		h.Err = "heap: " + err.Error()
		return h
	}
	if idx := cp.TypeIndex("cpu"); idx >= 0 {
		h.CPUByFunc = cp.Flat(idx)
		h.CPUTotalNS = cp.Total(idx)
	}
	h.CPUDurationNS = cp.DurationNanos
	if idx := hp.TypeIndex("alloc_space"); idx >= 0 {
		h.AllocByFunc = hp.Flat(idx)
		h.AllocTotal = hp.Total(idx)
	}
	if idx := hp.TypeIndex("inuse_space"); idx >= 0 {
		h.HeapInuse = hp.Total(idx)
	}
	return h
}

func (f *Fleet) get(ctx context.Context, backend, path string, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(backend, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	if f.opts.UserAgent != "" {
		req.Header.Set("User-Agent", f.opts.UserAgent)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s%s: http %d", backend, path, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxProfileBytes+1))
}

// last returns the most recent n successful harvests, newest first.
func (f *Fleet) last(backend string, n int) []Harvest {
	f.mu.Lock()
	defer f.mu.Unlock()
	win := f.wins[backend]
	out := make([]Harvest, 0, n)
	for i := len(win) - 1; i >= 0 && len(out) < n; i-- {
		if win[i].Err == "" {
			out = append(out, win[i])
		}
	}
	return out
}

// Latest returns the newest successful harvest for a backend.
func (f *Fleet) Latest(backend string) (Harvest, bool) {
	h := f.last(backend, 1)
	if len(h) == 0 {
		return Harvest{}, false
	}
	return h[0], true
}

// LastError returns the newest harvest error for a backend, "" when the
// newest capture succeeded or none exist.
func (f *Fleet) LastError(backend string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	win := f.wins[backend]
	if len(win) == 0 {
		return ""
	}
	return win[len(win)-1].Err
}

// AllocDelta diffs the two newest harvests' cumulative allocation
// profiles: which functions allocated how many bytes across the window,
// and how long that window was. Counter-reset aware: a backend restart
// (cumulative total went backwards) reports not-ok rather than a
// nonsense negative delta.
func (f *Fleet) AllocDelta(backend string) (delta map[string]int64, window time.Duration, ok bool) {
	hs := f.last(backend, 2)
	if len(hs) < 2 {
		return nil, 0, false
	}
	cur, prev := hs[0], hs[1]
	if cur.AllocTotal < prev.AllocTotal {
		return nil, 0, false
	}
	return Diff(cur.AllocByFunc, prev.AllocByFunc), cur.T.Sub(prev.T), true
}

// AllocRate returns a backend's allocation rate in bytes/second over
// the newest harvest pair.
func (f *Fleet) AllocRate(backend string) (float64, bool) {
	hs := f.last(backend, 2)
	if len(hs) < 2 {
		return 0, false
	}
	cur, prev := hs[0], hs[1]
	dt := cur.T.Sub(prev.T).Seconds()
	if dt <= 0 || cur.AllocTotal < prev.AllocTotal {
		return 0, false
	}
	return float64(cur.AllocTotal-prev.AllocTotal) / dt, true
}

// CPUBusyFrac returns the fraction of the sampled window a backend
// spent on CPU (can exceed 1 on multicore).
func (f *Fleet) CPUBusyFrac(backend string) (float64, bool) {
	h, ok := f.Latest(backend)
	if !ok || h.CPUDurationNS <= 0 {
		return 0, false
	}
	return float64(h.CPUTotalNS) / float64(h.CPUDurationNS), true
}

// MergedCPU merges the newest CPU windows across the fleet into one
// flat per-function view.
func (f *Fleet) MergedCPU() map[string]int64 {
	flats := make([]map[string]int64, 0, len(f.opts.Backends))
	for _, b := range f.opts.Backends {
		if h, ok := f.Latest(b); ok {
			flats = append(flats, h.CPUByFunc)
		}
	}
	return Merge(flats...)
}

// MergedAllocDelta merges per-backend allocation deltas fleet-wide.
func (f *Fleet) MergedAllocDelta() map[string]int64 {
	flats := make([]map[string]int64, 0, len(f.opts.Backends))
	for _, b := range f.opts.Backends {
		if d, _, ok := f.AllocDelta(b); ok {
			flats = append(flats, d)
		}
	}
	return Merge(flats...)
}

// BackendReport is the operator-facing digest of one backend's rolling
// profile window, JSON-shaped for the CLI and dashboard.
type BackendReport struct {
	Backend      string  `json:"backend"`
	CapturedAt   string  `json:"captured_at,omitempty"`
	Err          string  `json:"error,omitempty"`
	CPUBusyFrac  float64 `json:"cpu_busy_frac"`
	AllocPerSec  float64 `json:"alloc_bytes_per_sec"`
	HeapInuse    int64   `json:"heap_inuse_bytes"`
	TopCPU       []Entry `json:"top_cpu,omitempty"`
	TopAllocDiff []Entry `json:"top_alloc_delta,omitempty"`
}

// Report digests every backend's state, top-k'd for display.
func (f *Fleet) Report(topK int) []BackendReport {
	out := make([]BackendReport, 0, len(f.opts.Backends))
	for _, b := range f.opts.Backends {
		r := BackendReport{Backend: b, Err: f.LastError(b)}
		if h, ok := f.Latest(b); ok {
			r.CapturedAt = h.T.UTC().Format(time.RFC3339)
			r.HeapInuse = h.HeapInuse
			r.TopCPU = TopK(h.CPUByFunc, topK)
		}
		if v, ok := f.CPUBusyFrac(b); ok {
			r.CPUBusyFrac = v
		}
		if v, ok := f.AllocRate(b); ok {
			r.AllocPerSec = v
		}
		if d, _, ok := f.AllocDelta(b); ok {
			r.TopAllocDiff = TopK(d, topK)
		}
		out = append(out, r)
	}
	return out
}
