// Package profiling wires pprof profile capture into the CLIs, so the
// study's hot paths can be inspected with `go tool pprof` without
// rebuilding (the ROADMAP's "as fast as the hardware allows" demands the
// measurement loop itself stays observable).
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath when non-empty and returns a
// stop function that finalizes both profiles; it writes a heap profile to
// memPath (when non-empty) at stop time. Call the returned function
// exactly once, after the workload completes. The stop function always
// attempts both finalizations — a failed CPU-file close must not cost
// the heap profile — and joins whatever errors occurred.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("profiling: cpu: %w", err))
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("profiling: heap: %w", err))
			} else {
				runtime.GC() // settle the heap so the profile reflects live objects
				if err := pprof.WriteHeapProfile(f); err != nil {
					errs = append(errs, fmt.Errorf("profiling: heap: %w", err))
				}
				if err := f.Close(); err != nil {
					errs = append(errs, fmt.Errorf("profiling: heap: %w", err))
				}
			}
		}
		return errors.Join(errs...)
	}, nil
}
