package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoopWhenUnconfigured(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start with no paths: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop of a no-op session: %v", err)
	}
}

func TestStartWritesCPUProfile(t *testing.T) {
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := Start(cpu, "")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(cpu)
	if err != nil {
		t.Fatalf("CPU profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("CPU profile is empty")
	}
}

func TestStartWritesHeapProfileAtStop(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(mem); !os.IsNotExist(err) {
		t.Fatalf("heap profile written before stop (err=%v)", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

func TestStartRejectsUnwritableCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("Start with an unwritable CPU path succeeded")
	}
}

func TestStartRejectsConcurrentCPUProfiles(t *testing.T) {
	dir := t.TempDir()
	stop, err := Start(filepath.Join(dir, "a.pprof"), "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// The runtime allows one CPU profile at a time; a second Start must
	// surface that error rather than silently profiling nothing.
	if _, err := Start(filepath.Join(dir, "b.pprof"), ""); err == nil {
		t.Fatal("second concurrent CPU profile session succeeded")
	}
}

func TestStopReportsUnwritableHeapPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop with an unwritable heap path succeeded")
	}
}
