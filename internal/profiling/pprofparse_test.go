package profiling

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	httppprof "net/http/pprof"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// burnAlloc allocates recognizably from a named function so heap
// profiles mention it.
//
//go:noinline
func burnAlloc(n int) [][]byte {
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, make([]byte, 4096))
	}
	return out
}

var allocSink [][]byte

func TestParseHeapProfile(t *testing.T) {
	allocSink = burnAlloc(2000)
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	idx := p.TypeIndex("alloc_space")
	if idx < 0 {
		t.Fatalf("alloc_space dimension missing: %+v", p.SampleTypes)
	}
	if p.Total(idx) <= 0 {
		t.Fatal("heap profile has no allocation bytes")
	}
	flat := p.Flat(idx)
	var found bool
	for name, v := range flat {
		if strings.Contains(name, "burnAlloc") && v > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("burnAlloc missing from flat heap view (%d functions)", len(flat))
	}
	if inuse := p.TypeIndex("inuse_space"); inuse < 0 {
		t.Fatalf("inuse_space dimension missing: %+v", p.SampleTypes)
	}
	allocSink = nil
}

func TestParseCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cpu profiling unavailable: %v", err)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	sink := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1_000_000; i++ {
			sink += i * i
		}
	}
	_ = sink
	pprof.StopCPUProfile()

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	idx := p.TypeIndex("cpu")
	if idx < 0 {
		t.Fatalf("cpu dimension missing: %+v", p.SampleTypes)
	}
	if p.DurationNanos <= 0 {
		t.Fatal("cpu profile missing duration")
	}
	// A busy loop for 300ms must sample something.
	if p.Total(idx) <= 0 {
		t.Skip("no cpu samples captured (heavily loaded host)")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not a profile at all, definitely")); err == nil {
		// A garbage byte string can accidentally scan as empty-ish proto;
		// what matters is no panic and no samples.
		p, _ := Parse([]byte("not a profile at all, definitely"))
		if p != nil && len(p.Samples) > 0 {
			t.Fatal("garbage produced samples")
		}
	}
	if _, err := Parse([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Fatal("truncated gzip parsed")
	}
}

func TestDiffMergeTopK(t *testing.T) {
	prev := map[string]int64{"a": 100, "b": 50, "gone": 7}
	cur := map[string]int64{"a": 180, "b": 50, "new": 20}
	d := Diff(cur, prev)
	if d["a"] != 80 || d["new"] != 20 || d["gone"] != -7 {
		t.Fatalf("diff wrong: %+v", d)
	}
	if _, ok := d["b"]; ok {
		t.Fatal("zero delta must be omitted")
	}
	m := Merge(map[string]int64{"x": 1}, map[string]int64{"x": 2, "y": 3})
	if m["x"] != 3 || m["y"] != 3 {
		t.Fatalf("merge wrong: %+v", m)
	}
	top := TopK(d, 2)
	if len(top) != 2 || top[0].Name != "a" || top[1].Name != "new" {
		t.Fatalf("topk wrong: %+v", top)
	}
}

func TestFleetHarvestAndDelta(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.Handle("/debug/pprof/heap", httppprof.Handler("heap"))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	fleet := NewFleet(FleetOptions{
		Backends: []string{srv.URL},
		Seconds:  1,
		Timeout:  10 * time.Second,
	})
	ctx := context.Background()
	fleet.HarvestAll(ctx)
	if err := fleet.LastError(srv.URL); err != "" {
		t.Fatalf("first harvest failed: %s", err)
	}
	h, ok := fleet.Latest(srv.URL)
	if !ok {
		t.Fatal("no harvest retained")
	}
	if h.AllocTotal <= 0 {
		t.Fatal("harvest has no cumulative allocations")
	}
	// Allocate between harvests so the delta is non-empty.
	allocSink = burnAlloc(3000)
	fleet.HarvestAll(ctx)
	allocSink = nil

	delta, window, ok := fleet.AllocDelta(srv.URL)
	if !ok {
		t.Fatal("no alloc delta after two harvests")
	}
	if window <= 0 {
		t.Fatalf("window = %v", window)
	}
	var total int64
	for _, v := range delta {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		t.Fatalf("alloc delta empty: %+v", delta)
	}
	if rate, ok := fleet.AllocRate(srv.URL); !ok || rate <= 0 {
		t.Fatalf("alloc rate = %v ok=%v", rate, ok)
	}
	rep := fleet.Report(5)
	if len(rep) != 1 || rep[0].AllocPerSec <= 0 {
		t.Fatalf("report wrong: %+v", rep)
	}
}

func TestFleetRecordsUnreachableBackend(t *testing.T) {
	fleet := NewFleet(FleetOptions{
		Backends: []string{"http://127.0.0.1:1"},
		Seconds:  1,
		Timeout:  200 * time.Millisecond,
	})
	fleet.HarvestAll(context.Background())
	if fleet.LastError("http://127.0.0.1:1") == "" {
		t.Fatal("unreachable backend left no error")
	}
	if _, ok := fleet.Latest("http://127.0.0.1:1"); ok {
		t.Fatal("failed harvest must not count as latest success")
	}
}
