package profiling

// Minimal pprof profile decoder. The fleet profiler needs to read the
// gzipped-protobuf profiles that /debug/pprof serves, but this
// repository takes no dependencies, so this file decodes the handful
// of proto fields the profile.proto schema defines for samples,
// locations, functions, and the string table — enough to flatten a
// profile to per-function values, merge profiles across a fleet, and
// diff consecutive harvests. Unknown fields are skipped by wire type,
// so richer producers (labels, mappings, comments) parse fine.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// ValueType names one sample dimension, e.g. {"cpu","nanoseconds"} or
// {"alloc_space","bytes"}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack with its measured values, stack leaf first.
type Sample struct {
	Stack  []string
	Values []int64
}

// Profile is a decoded pprof profile, resolved to function names.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType
}

// decode limits, far above anything the runtime emits but low enough
// that a corrupt length prefix cannot balloon memory.
const (
	maxProfileBytes = 64 << 20
	maxSamples      = 1 << 20
)

// Parse decodes a pprof profile, transparently gunzipping (the wire
// form /debug/pprof serves is always gzipped; files may not be).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profiling: gunzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxProfileBytes+1))
		if err != nil {
			return nil, fmt.Errorf("profiling: gunzip: %w", err)
		}
		if len(raw) > maxProfileBytes {
			return nil, fmt.Errorf("profiling: profile exceeds %d bytes decompressed", maxProfileBytes)
		}
		data = raw
	}
	return decodeProfile(data)
}

// protobuf scanner ------------------------------------------------------

type protoDec struct {
	b []byte
	i int
}

func (d *protoDec) done() bool { return d.i >= len(d.b) }

func (d *protoDec) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.i >= len(d.b) {
			return 0, fmt.Errorf("truncated varint")
		}
		c := d.b[d.i]
		d.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("varint overflow")
}

// field reads the next tag and returns the field number, and either the
// varint value (wire type 0) or the length-delimited payload (type 2).
func (d *protoDec) field() (num int, val uint64, payload []byte, err error) {
	tag, err := d.varint()
	if err != nil {
		return 0, 0, nil, err
	}
	num = int(tag >> 3)
	switch tag & 7 {
	case 0:
		val, err = d.varint()
		return num, val, nil, err
	case 1: // fixed64: skip
		if d.i+8 > len(d.b) {
			return 0, 0, nil, fmt.Errorf("truncated fixed64")
		}
		d.i += 8
		return num, 0, nil, nil
	case 2:
		n, err := d.varint()
		if err != nil {
			return 0, 0, nil, err
		}
		if uint64(len(d.b)-d.i) < n {
			return 0, 0, nil, fmt.Errorf("truncated field %d payload", num)
		}
		payload = d.b[d.i : d.i+int(n)]
		d.i += int(n)
		return num, 0, payload, nil
	case 5: // fixed32: skip
		if d.i+4 > len(d.b) {
			return 0, 0, nil, fmt.Errorf("truncated fixed32")
		}
		d.i += 4
		return num, 0, nil, nil
	default:
		return 0, 0, nil, fmt.Errorf("unsupported wire type %d", tag&7)
	}
}

// ints decodes a repeated integer field: packed (payload non-nil) or a
// single varint occurrence, appending to dst.
func appendInts(dst []uint64, val uint64, payload []byte) ([]uint64, error) {
	if payload == nil {
		return append(dst, val), nil
	}
	d := protoDec{b: payload}
	for !d.done() {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// profile.proto shapes --------------------------------------------------

type pbValueType struct{ typ, unit int64 }

func decodeValueType(b []byte) (pbValueType, error) {
	var vt pbValueType
	d := protoDec{b: b}
	for !d.done() {
		num, val, _, err := d.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			vt.typ = int64(val)
		case 2:
			vt.unit = int64(val)
		}
	}
	return vt, nil
}

func decodeProfile(data []byte) (*Profile, error) {
	type pbSample struct {
		locs   []uint64
		values []uint64
	}
	type pbLine struct{ funcID uint64 }
	type pbLocation struct {
		id      uint64
		address uint64
		lines   []pbLine
	}
	type pbFunction struct {
		id   uint64
		name int64
	}

	var (
		sampleTypes []pbValueType
		samples     []pbSample
		locations   []pbLocation
		functions   []pbFunction
		strtab      []string
		prof        Profile
		periodType  pbValueType
	)

	d := protoDec{b: data}
	for !d.done() {
		num, val, payload, err := d.field()
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		switch num {
		case 1: // sample_type
			vt, err := decodeValueType(payload)
			if err != nil {
				return nil, fmt.Errorf("profiling: sample_type: %w", err)
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			if len(samples) >= maxSamples {
				return nil, fmt.Errorf("profiling: over %d samples", maxSamples)
			}
			var s pbSample
			sd := protoDec{b: payload}
			for !sd.done() {
				n, v, p, err := sd.field()
				if err != nil {
					return nil, fmt.Errorf("profiling: sample: %w", err)
				}
				switch n {
				case 1:
					if s.locs, err = appendInts(s.locs, v, p); err != nil {
						return nil, fmt.Errorf("profiling: sample locs: %w", err)
					}
				case 2:
					if s.values, err = appendInts(s.values, v, p); err != nil {
						return nil, fmt.Errorf("profiling: sample values: %w", err)
					}
				}
			}
			samples = append(samples, s)
		case 4: // location
			var loc pbLocation
			ld := protoDec{b: payload}
			for !ld.done() {
				n, v, p, err := ld.field()
				if err != nil {
					return nil, fmt.Errorf("profiling: location: %w", err)
				}
				switch n {
				case 1:
					loc.id = v
				case 3:
					loc.address = v
				case 4:
					var line pbLine
					pd := protoDec{b: p}
					for !pd.done() {
						ln, lv, _, err := pd.field()
						if err != nil {
							return nil, fmt.Errorf("profiling: line: %w", err)
						}
						if ln == 1 {
							line.funcID = lv
						}
					}
					loc.lines = append(loc.lines, line)
				}
			}
			locations = append(locations, loc)
		case 5: // function
			var fn pbFunction
			fd := protoDec{b: payload}
			for !fd.done() {
				n, v, _, err := fd.field()
				if err != nil {
					return nil, fmt.Errorf("profiling: function: %w", err)
				}
				switch n {
				case 1:
					fn.id = v
				case 2:
					fn.name = int64(v)
				}
			}
			functions = append(functions, fn)
		case 6: // string_table
			strtab = append(strtab, string(payload))
		case 9:
			prof.TimeNanos = int64(val)
		case 10:
			prof.DurationNanos = int64(val)
		case 11:
			periodType, err = decodeValueType(payload)
			if err != nil {
				return nil, fmt.Errorf("profiling: period_type: %w", err)
			}
		case 12:
			prof.Period = int64(val)
		}
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strtab) {
			return ""
		}
		return strtab[i]
	}
	for _, vt := range sampleTypes {
		prof.SampleTypes = append(prof.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	prof.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}

	funcName := make(map[uint64]string, len(functions))
	for _, fn := range functions {
		funcName[fn.id] = str(fn.name)
	}
	// A location's frames are its inlined lines, innermost first; name
	// the location by its innermost function, falling back to the raw
	// address when symbolization is absent.
	locName := make(map[uint64]string, len(locations))
	for _, loc := range locations {
		name := ""
		if len(loc.lines) > 0 {
			name = funcName[loc.lines[0].funcID]
		}
		if name == "" {
			name = fmt.Sprintf("0x%x", loc.address)
		}
		locName[loc.id] = name
	}

	prof.Samples = make([]Sample, 0, len(samples))
	for _, s := range samples {
		out := Sample{
			Stack:  make([]string, len(s.locs)),
			Values: make([]int64, len(s.values)),
		}
		for i, id := range s.locs {
			name, ok := locName[id]
			if !ok {
				name = "[unknown]"
			}
			out.Stack[i] = name
		}
		for i, v := range s.values {
			out.Values[i] = int64(v)
		}
		prof.Samples = append(prof.Samples, out)
	}
	return &prof, nil
}

// queries ---------------------------------------------------------------

// TypeIndex returns the index of the named sample dimension, -1 when
// absent (e.g. "cpu" for CPU profiles, "alloc_space" for heap).
func (p *Profile) TypeIndex(name string) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == name {
			return i
		}
	}
	return -1
}

// Flat sums dimension idx per leaf function: the self-cost view that
// fleet merging and diffing operate on.
func (p *Profile) Flat(idx int) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range p.Samples {
		if idx < 0 || idx >= len(s.Values) || len(s.Stack) == 0 {
			continue
		}
		out[s.Stack[0]] += s.Values[idx]
	}
	return out
}

// Total sums dimension idx over every sample.
func (p *Profile) Total(idx int) int64 {
	var t int64
	for _, s := range p.Samples {
		if idx >= 0 && idx < len(s.Values) {
			t += s.Values[idx]
		}
	}
	return t
}

// Diff returns cur-prev per function, omitting zero deltas. Functions
// present only in prev appear with negative values, so a diff reads as
// "what this window added".
func Diff(cur, prev map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for k, v := range cur {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range prev {
		if _, ok := cur[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	return out
}

// Merge sums several flat views into one, the per-fleet aggregate.
func Merge(flats ...map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for _, f := range flats {
		for k, v := range f {
			out[k] += v
		}
	}
	return out
}

// Entry is one row of a TopK report.
type Entry struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// TopK returns the k largest entries by absolute value, ties broken by
// name so reports are stable.
func TopK(flat map[string]int64, k int) []Entry {
	out := make([]Entry, 0, len(flat))
	for name, v := range flat {
		out = append(out, Entry{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Value, out[j].Value
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
