// Package trend replays stored studies across the fleet's technology
// generations and tracks how the measured energy/performance Pareto
// frontier of Section 4.2 drifts as each process node arrives. The
// replay is cumulative — generation k sees every configuration built on
// node k or any earlier node — mirroring how the paper's five-year
// retrospective accumulates hardware rather than replacing it.
//
// The pipeline is deliberately thin: all aggregation runs through
// harness.AggregateConfig and all dominance analysis through
// pareto.Frontier, so a trend report computed from stored rows is
// bit-identical to one computed from live measurements of the same
// seed.
package trend

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/harness"
	"repro/internal/pareto"
	"repro/internal/proc"
	"repro/internal/workload"
)

// Source is the slice of measured data a trend replay runs over.
// store.Dataset satisfies it structurally; tests may substitute any
// in-memory equivalent.
type Source interface {
	// Configs lists the distinct configurations present, canonical
	// study order first.
	Configs() []proc.ConfiguredProcessor
	// Complete reports whether every benchmark of the given groups has
	// a measurement on cp.
	Complete(cp proc.ConfiguredProcessor, groups []workload.Group) bool
	// Measure is the harness.MeasureFunc lookup over the data.
	Measure(b *workload.Benchmark, cp proc.ConfiguredProcessor) (*harness.Measurement, error)
	// Reference rebuilds the Section 2.6 normalization table.
	Reference() (*harness.Reference, error)
	// Seeds lists the seeds contributing measurements, ascending.
	Seeds() []int64
}

// Point is one configuration's position in the tradeoff space of one
// generation's replay.
type Point struct {
	Label     string  `json:"label"`
	Processor string  `json:"processor"`
	NodeNM    int     `json:"node_nm"`
	Perf      float64 `json:"perf_norm"`
	Energy    float64 `json:"energy_norm"`
	Watts     float64 `json:"watts"`
	Efficient bool    `json:"efficient"`
}

// Drift quantifies how a generation's frontier moved relative to the
// previous generation's.
type Drift struct {
	// NewEfficient counts frontier members that were not efficient (or
	// not present) in the previous generation.
	NewEfficient int `json:"new_efficient"`
	// Displaced counts previous frontier members pushed off the
	// frontier by this generation's arrivals.
	Displaced int `json:"displaced"`
	// BestPerfGain is the relative gain in the frontier's best
	// normalized performance (0.25 = 25% faster at the top end).
	BestPerfGain float64 `json:"best_perf_gain"`
	// MinEnergyDrop is the relative drop in the frontier's lowest
	// normalized energy (0.25 = the thriftiest point got 25% thriftier).
	MinEnergyDrop float64 `json:"min_energy_drop"`
	// EnergyReductionAtPerf is the mean relative energy reduction at
	// matched performance, sampled over the overlap of the two
	// frontiers' performance ranges by piecewise-linear interpolation.
	// Zero when the ranges do not overlap.
	EnergyReductionAtPerf float64 `json:"energy_reduction_at_matched_perf"`
	// OverlapLo/OverlapHi bound the sampled performance range.
	OverlapLo float64 `json:"overlap_lo"`
	OverlapHi float64 `json:"overlap_hi"`
}

// Generation is one technology node's cumulative replay.
type Generation struct {
	// NodeNM is the process node that arrives with this generation.
	NodeNM int `json:"node_nm"`
	// Processors lists the fleet members available by this generation,
	// fleet order.
	Processors []string `json:"processors"`
	// Points holds every aggregated configuration available by this
	// generation, with frontier membership marked.
	Points []Point `json:"points"`
	// Frontier lists the efficient labels in ascending-performance
	// order.
	Frontier []string `json:"frontier"`
	// BestPerf and MinEnergy are the frontier's extremes.
	BestPerf  float64 `json:"best_perf"`
	MinEnergy float64 `json:"min_energy"`
	// FrontierWattsMin/Max bound measured wall power across the
	// efficient set; PowerSwing = 1 - min/max is the fraction of peak
	// power the efficient set can shed by configuration choice alone —
	// a config-space analogue of energy proportionality.
	FrontierWattsMin float64 `json:"frontier_watts_min"`
	FrontierWattsMax float64 `json:"frontier_watts_max"`
	PowerSwing       float64 `json:"power_swing"`
	// Drift compares against the previous generation; nil for the
	// first.
	Drift *Drift `json:"drift,omitempty"`
}

// Report is a full longitudinal replay.
type Report struct {
	// Seeds lists the seeds behind the replayed measurements.
	Seeds []int64 `json:"seeds"`
	// Groups names the workload groups aggregated (empty = all four).
	Groups []string `json:"groups,omitempty"`
	// Skipped lists configurations present but incomplete (missing
	// benchmark cells), which the replay excludes.
	Skipped []string `json:"skipped,omitempty"`
	// Generations are ordered oldest node first.
	Generations []Generation `json:"generations"`
}

// driftSamples is the piecewise-linear sample count used for the
// matched-performance energy comparison.
const driftSamples = 33

// Analyze replays src across technology generations. Groups selects the
// workload groups to aggregate (nil = all four). It errors when no
// configuration is complete enough to aggregate.
func Analyze(src Source, groups []workload.Group) (*Report, error) {
	ref, err := src.Reference()
	if err != nil {
		return nil, fmt.Errorf("trend: normalization reference: %w", err)
	}
	nodeOf := make(map[string]int)
	for _, p := range proc.Fleet() {
		nodeOf[p.Name] = p.Spec.NodeNM
	}

	rep := &Report{Seeds: src.Seeds()}
	for _, g := range groups {
		rep.Groups = append(rep.Groups, g.String())
	}

	// Aggregate every complete configuration once; tag with its node.
	type tagged struct {
		pt   Point
		node int
	}
	var all []tagged
	for _, cp := range src.Configs() {
		node, ok := nodeOf[cp.Proc.Name]
		if !ok {
			return nil, fmt.Errorf("trend: processor %q not in fleet", cp.Proc.Name)
		}
		if !src.Complete(cp, groups) {
			rep.Skipped = append(rep.Skipped, cp.String())
			continue
		}
		res, err := harness.AggregateConfig(cp, src.Measure, ref, groups)
		if err != nil {
			return nil, err
		}
		all = append(all, tagged{node: node, pt: Point{
			Label:     cp.String(),
			Processor: cp.Proc.Name,
			NodeNM:    node,
			Perf:      res.PerfW,
			Energy:    res.EnergyW,
			Watts:     res.WattsW,
		}})
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("trend: no complete configurations to replay (%d skipped)", len(rep.Skipped))
	}

	// Generations arrive oldest (largest) node first.
	seen := make(map[int]bool)
	var nodes []int
	for _, tg := range all {
		if !seen[tg.node] {
			seen[tg.node] = true
			nodes = append(nodes, tg.node)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(nodes)))

	var prevFront []pareto.Point
	for _, node := range nodes {
		gen := Generation{NodeNM: node}
		procSeen := make(map[string]bool)
		var pts []Point
		for _, tg := range all {
			if tg.node < node {
				continue // arrives in a later generation
			}
			pts = append(pts, tg.pt)
		}
		for _, p := range proc.Fleet() {
			for _, pt := range pts {
				if pt.Processor == p.Name && !procSeen[p.Name] {
					procSeen[p.Name] = true
					gen.Processors = append(gen.Processors, p.Name)
				}
			}
		}

		pps := make([]pareto.Point, len(pts))
		for i, pt := range pts {
			pps[i] = pareto.Point{Label: pt.Label, Perf: pt.Perf, Energy: pt.Energy}
		}
		front := pareto.Frontier(pps)
		efficient := make(map[string]bool, len(front))
		for _, p := range front {
			efficient[p.Label] = true
			gen.Frontier = append(gen.Frontier, p.Label)
		}
		for i := range pts {
			pts[i].Efficient = efficient[pts[i].Label]
		}
		gen.Points = pts

		gen.BestPerf = front[len(front)-1].Perf
		gen.MinEnergy = front[0].Energy
		for _, p := range front {
			if p.Energy < gen.MinEnergy {
				gen.MinEnergy = p.Energy
			}
		}
		first := true
		for _, pt := range pts {
			if !pt.Efficient {
				continue
			}
			if first || pt.Watts < gen.FrontierWattsMin {
				gen.FrontierWattsMin = pt.Watts
			}
			if first || pt.Watts > gen.FrontierWattsMax {
				gen.FrontierWattsMax = pt.Watts
			}
			first = false
		}
		if gen.FrontierWattsMax > 0 {
			gen.PowerSwing = 1 - gen.FrontierWattsMin/gen.FrontierWattsMax
		}

		if prevFront != nil {
			gen.Drift = driftBetween(prevFront, front)
		}
		prevFront = front
		rep.Generations = append(rep.Generations, gen)
	}
	return rep, nil
}

// driftBetween compares two frontiers (both in ascending-performance
// order, as pareto.Frontier returns them).
func driftBetween(prev, cur []pareto.Point) *Drift {
	d := &Drift{}
	prevSet := make(map[string]bool, len(prev))
	for _, p := range prev {
		prevSet[p.Label] = true
	}
	curSet := make(map[string]bool, len(cur))
	for _, p := range cur {
		curSet[p.Label] = true
		if !prevSet[p.Label] {
			d.NewEfficient++
		}
	}
	for _, p := range prev {
		if !curSet[p.Label] {
			d.Displaced++
		}
	}

	prevBest, curBest := prev[len(prev)-1].Perf, cur[len(cur)-1].Perf
	if prevBest > 0 {
		d.BestPerfGain = curBest/prevBest - 1
	}
	prevMinE, curMinE := minEnergy(prev), minEnergy(cur)
	if prevMinE > 0 {
		d.MinEnergyDrop = 1 - curMinE/prevMinE
	}

	lo := prev[0].Perf
	if cur[0].Perf > lo {
		lo = cur[0].Perf
	}
	hi := prevBest
	if curBest < hi {
		hi = curBest
	}
	if lo < hi {
		d.OverlapLo, d.OverlapHi = lo, hi
		var sum float64
		var n int
		for i := 0; i < driftSamples; i++ {
			x := lo + (hi-lo)*float64(i)/float64(driftSamples-1)
			pe := interpEnergy(prev, x)
			ce := interpEnergy(cur, x)
			if pe > 0 {
				sum += (pe - ce) / pe
				n++
			}
		}
		if n > 0 {
			d.EnergyReductionAtPerf = sum / float64(n)
		}
	}
	return d
}

func minEnergy(front []pareto.Point) float64 {
	m := front[0].Energy
	for _, p := range front {
		if p.Energy < m {
			m = p.Energy
		}
	}
	return m
}

// interpEnergy evaluates the frontier's energy at performance x by
// piecewise-linear interpolation over the efficient points, clamped to
// the frontier's performance range. Unlike pareto.FitCurve it needs no
// minimum point count, so it stays defined for sparse early
// generations.
func interpEnergy(front []pareto.Point, x float64) float64 {
	if x <= front[0].Perf {
		return front[0].Energy
	}
	last := front[len(front)-1]
	if x >= last.Perf {
		return last.Energy
	}
	for i := 1; i < len(front); i++ {
		a, b := front[i-1], front[i]
		if x > b.Perf {
			continue
		}
		if b.Perf == a.Perf {
			return b.Energy
		}
		t := (x - a.Perf) / (b.Perf - a.Perf)
		return a.Energy + t*(b.Energy-a.Energy)
	}
	return last.Energy
}

// WriteTable renders the report as an aligned text table, one line per
// generation, for the powerperf trend CLI.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-8s %-6s %-8s %-10s %-10s %-8s %s\n",
		"node", "cfgs", "frontier", "best perf", "min energy", "swing", "drift (new/out, dE@perf)")
	for _, g := range r.Generations {
		drift := "-"
		if g.Drift != nil {
			drift = fmt.Sprintf("+%d/-%d, %+.1f%%", g.Drift.NewEfficient, g.Drift.Displaced,
				100*g.Drift.EnergyReductionAtPerf)
		}
		fmt.Fprintf(w, "%-8s %-6d %-8d %-10.3f %-10.3f %-8s %s\n",
			fmt.Sprintf("%d nm", g.NodeNM), len(g.Points), len(g.Frontier),
			g.BestPerf, g.MinEnergy, fmt.Sprintf("%.0f%%", 100*g.PowerSwing), drift)
	}
	if len(r.Skipped) > 0 {
		fmt.Fprintf(w, "skipped %d incomplete configuration(s)\n", len(r.Skipped))
	}
}
