package trend

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/proc"
	"repro/internal/store"
	"repro/internal/workload"
)

// storedDataset measures every stock configuration of the fleet (which
// includes the four reference cells), seals it into a store, and
// collects it back — the "from stored data alone" path the trend
// pipeline must reproduce drift from.
func storedDataset(t *testing.T) *store.Dataset {
	t.Helper()
	h, err := harness.New(42)
	if err != nil {
		t.Fatal(err)
	}
	st := &store.Study{Seed: 42, SealedUnixNano: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC).UnixNano()}
	for _, cp := range proc.StockConfigs() {
		for _, b := range workload.All() {
			m, err := h.Measure(b, cp)
			if err != nil {
				t.Fatal(err)
			}
			st.Rows = append(st.Rows, store.RowFromMeasurement(m))
		}
	}
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(st); err != nil {
		t.Fatal(err)
	}
	d, err := s.Collect(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAnalyzeGenerations(t *testing.T) {
	d := storedDataset(t)
	rep, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The fleet spans four process nodes; the replay must see all of
	// them, oldest first.
	wantNodes := []int{130, 65, 45, 32}
	var gotNodes []int
	for _, g := range rep.Generations {
		gotNodes = append(gotNodes, g.NodeNM)
	}
	if !reflect.DeepEqual(gotNodes, wantNodes) {
		t.Fatalf("generations = %v, want %v", gotNodes, wantNodes)
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("unexpected skipped configs: %v", rep.Skipped)
	}
	if !reflect.DeepEqual(rep.Seeds, []int64{42}) {
		t.Fatalf("seeds = %v, want [42]", rep.Seeds)
	}

	prevPts, prevBest := 0, 0.0
	prevMinE := 0.0
	for i, g := range rep.Generations {
		if len(g.Frontier) == 0 {
			t.Fatalf("%d nm: empty frontier", g.NodeNM)
		}
		// Cumulative replay: the config pool only grows.
		if len(g.Points) <= prevPts && i > 0 {
			t.Fatalf("%d nm: %d points, previous generation had %d", g.NodeNM, len(g.Points), prevPts)
		}
		// A superset of points can only push the frontier outward.
		if i > 0 && g.BestPerf < prevBest {
			t.Fatalf("%d nm: best perf regressed %.4f -> %.4f", g.NodeNM, prevBest, g.BestPerf)
		}
		if i > 0 && g.MinEnergy > prevMinE {
			t.Fatalf("%d nm: min energy regressed %.4f -> %.4f", g.NodeNM, prevMinE, g.MinEnergy)
		}
		if (g.Drift == nil) != (i == 0) {
			t.Fatalf("%d nm: drift presence wrong for generation %d", g.NodeNM, i)
		}
		if g.Drift != nil && g.Drift.BestPerfGain < 0 {
			t.Fatalf("%d nm: negative best-perf gain %.4f under a cumulative pool", g.NodeNM, g.Drift.BestPerfGain)
		}
		if g.FrontierWattsMin > g.FrontierWattsMax {
			t.Fatalf("%d nm: watts range inverted", g.NodeNM)
		}
		if g.PowerSwing < 0 || g.PowerSwing >= 1 {
			t.Fatalf("%d nm: power swing %.4f out of [0,1)", g.NodeNM, g.PowerSwing)
		}
		// Frontier membership marks match the frontier list.
		marked := 0
		for _, p := range g.Points {
			if p.Efficient {
				marked++
			}
		}
		if marked != len(g.Frontier) {
			t.Fatalf("%d nm: %d efficient marks vs %d frontier labels", g.NodeNM, marked, len(g.Frontier))
		}
		prevPts, prevBest, prevMinE = len(g.Points), g.BestPerf, g.MinEnergy
	}

	// The newest generation should actually have moved the frontier:
	// across the language-and-hardware span the 32 nm arrival (i5)
	// displaces or joins, and some drift metric is nonzero.
	last := rep.Generations[len(rep.Generations)-1]
	if last.Drift.NewEfficient == 0 && last.Drift.BestPerfGain == 0 && last.Drift.EnergyReductionAtPerf == 0 {
		t.Fatal("32 nm generation shows no frontier drift at all")
	}

	// Determinism: a second replay over the same dataset is identical.
	rep2, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("trend replay is not deterministic")
	}

	var buf bytes.Buffer
	rep.WriteTable(&buf)
	if buf.Len() == 0 || bytes.Count(buf.Bytes(), []byte("\n")) < 5 {
		t.Fatalf("table render too short:\n%s", buf.String())
	}
}

func TestAnalyzeSkipsIncomplete(t *testing.T) {
	h, err := harness.New(42)
	if err != nil {
		t.Fatal(err)
	}
	st := &store.Study{Seed: 42, SealedUnixNano: 1}
	refs, err := harness.ReferenceCells()
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range refs {
		for _, b := range workload.All() {
			m, err := h.Measure(b, cp)
			if err != nil {
				t.Fatal(err)
			}
			st.Rows = append(st.Rows, store.RowFromMeasurement(m))
		}
	}
	// One extra config with a single benchmark: present but incomplete.
	i7, err := proc.ByName(proc.I7Name)
	if err != nil {
		t.Fatal(err)
	}
	partial := proc.ConfiguredProcessor{Proc: i7, Config: proc.Config{Cores: 2, SMTWays: 1, ClockGHz: i7.Spec.ClockGHz}}
	m, err := h.Measure(workload.All()[0], partial)
	if err != nil {
		t.Fatal(err)
	}
	st.Rows = append(st.Rows, store.RowFromMeasurement(m))

	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(st); err != nil {
		t.Fatal(err)
	}
	d, err := s.Collect(store.Query{})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != partial.String() {
		t.Fatalf("skipped = %v, want exactly the partial config", rep.Skipped)
	}
	total := 0
	for _, g := range rep.Generations {
		for _, p := range g.Points {
			if p.Label == partial.String() {
				t.Fatal("incomplete config leaked into the replay")
			}
		}
		total += len(g.Points)
	}
	if total == 0 {
		t.Fatal("no points replayed from the reference cells")
	}
}
